(* Snapshot oracle: a fast-forwarded run must be indistinguishable from
   an uninterrupted one.

   For a workload, a memory attachment, an engine mode and a roadmark
   [k] (1 <= k < invocations) it runs three journeys to the end of the
   same [invocations]-long schedule and cross-checks them:

   - [U], uninterrupted: all invocations in the detailed engine, with a
     probe recording statistics and the trace high-water mark at the
     roadmark boundary.
   - [F], capture round-trip: [k] detailed invocations, checkpoint at
     the boundary ({!Salam.capture}), restore into a freshly built
     system and run the remainder.
   - [W], interpreter warm-up: [k] functional invocations
     ({!Salam.warm_up}), checkpoint, restore, run the remainder.

   Bit-identity demands: final memory images byte-equal across all
   three; F's post-roadmark statistics equal to U's end-minus-probe
   deltas (exact for counters, relative tolerance for energy floats,
   whose accumulation is not associative); F's trace stream exactly
   equal to U's post-roadmark suffix at the same absolute ticks; W's
   run exactly equal to F's; and the warm-up checkpoint's memory
   section byte-equal to the capture checkpoint's. A disk round-trip of
   the warm-up snapshot must reproduce it structurally. *)

module W = Salam_workloads.Workload
module Engine = Salam_engine.Engine
module Memory = Salam_ir.Memory
module Trace = Salam_obs.Trace
module Ckpt = Salam_sim.Checkpoint
module Config = Salam.Config

type report = {
  r_workload : string;
  r_memory : Check_harness.memory_kind;
  r_mode : Engine.mode;
  r_roadmark : int;
  r_invocations : int;
  r_result : (unit, string) result;
}

let memory_kind_label = function
  | Check_harness.Spm -> "spm"
  | Check_harness.Cache _ -> "cache"
  | Check_harness.Dram -> "dram"

let config_of memory_kind mode =
  let memory =
    match memory_kind with
    | Check_harness.Spm -> Config.default.Config.memory
    | Check_harness.Cache { size; ways } ->
        Config.Cache { size; line_bytes = 64; ways; hit_latency = 2 }
    | Check_harness.Dram -> Config.Dram_direct
  in
  { Config.default with Config.memory; engine = { Engine.default_config with Engine.mode } }

(* Energy accumulators are float sums: (a +. b) -. a is not exactly b,
   so delta comparisons get a relative tolerance. Everything counted in
   integers must match exactly. *)
let approx a b = abs_float (a -. b) <= 1e-9 *. (1.0 +. max (abs_float a) (abs_float b))

let assoc0_f cls xs = match List.assoc_opt cls xs with Some v -> v | None -> 0.0

let assoc0_i cls xs = match List.assoc_opt cls xs with Some v -> v | None -> 0

(* Compare F's post-roadmark engine statistics against U's end-of-run
   totals minus the probe's roadmark totals, field by field. *)
let diff_engine_stats ~errs (u : Engine.run_stats) (p : Engine.run_stats) (f : Engine.run_stats) =
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let int name u p f =
    if u - p <> f then err "engine %s: uninterrupted delta %d, fast-forwarded %d" name (u - p) f
  in
  if not (Int64.equal (Int64.sub u.Engine.cycles p.Engine.cycles) f.Engine.cycles) then
    err "engine cycles: uninterrupted delta %Ld, fast-forwarded %Ld"
      (Int64.sub u.Engine.cycles p.Engine.cycles)
      f.Engine.cycles;
  int "dynamic_instructions" u.Engine.dynamic_instructions p.Engine.dynamic_instructions
    f.Engine.dynamic_instructions;
  int "loads_issued" u.Engine.loads_issued p.Engine.loads_issued f.Engine.loads_issued;
  int "stores_issued" u.Engine.stores_issued p.Engine.stores_issued f.Engine.stores_issued;
  int "active_cycles" u.Engine.active_cycles p.Engine.active_cycles f.Engine.active_cycles;
  int "issue_cycles" u.Engine.issue_cycles p.Engine.issue_cycles f.Engine.issue_cycles;
  int "stall_cycles" u.Engine.stall_cycles p.Engine.stall_cycles f.Engine.stall_cycles;
  int "stall_load_only" u.Engine.stall_load_only p.Engine.stall_load_only f.Engine.stall_load_only;
  int "stall_load_compute" u.Engine.stall_load_compute p.Engine.stall_load_compute
    f.Engine.stall_load_compute;
  int "stall_load_store_compute" u.Engine.stall_load_store_compute
    p.Engine.stall_load_store_compute f.Engine.stall_load_store_compute;
  int "stall_other" u.Engine.stall_other p.Engine.stall_other f.Engine.stall_other;
  int "cycles_with_load" u.Engine.cycles_with_load p.Engine.cycles_with_load
    f.Engine.cycles_with_load;
  int "cycles_with_store" u.Engine.cycles_with_store p.Engine.cycles_with_store
    f.Engine.cycles_with_store;
  int "cycles_with_load_and_store" u.Engine.cycles_with_load_and_store
    p.Engine.cycles_with_load_and_store f.Engine.cycles_with_load_and_store;
  int "cycles_with_fp" u.Engine.cycles_with_fp p.Engine.cycles_with_fp f.Engine.cycles_with_fp;
  int "issued_fp" u.Engine.issued_fp p.Engine.issued_fp f.Engine.issued_fp;
  int "issued_int" u.Engine.issued_int p.Engine.issued_int f.Engine.issued_int;
  int "issued_mem" u.Engine.issued_mem p.Engine.issued_mem f.Engine.issued_mem;
  int "issued_other" u.Engine.issued_other p.Engine.issued_other f.Engine.issued_other;
  let classes =
    List.sort_uniq compare
      (List.map fst u.Engine.issued_by_class
      @ List.map fst f.Engine.issued_by_class
      @ List.map fst u.Engine.fu_busy_integral
      @ List.map fst f.Engine.fu_busy_integral)
  in
  List.iter
    (fun cls ->
      let name = Salam_hw.Fu.to_string cls in
      let du =
        assoc0_i cls u.Engine.issued_by_class - assoc0_i cls p.Engine.issued_by_class
      in
      let df = assoc0_i cls f.Engine.issued_by_class in
      if du <> df then
        err "engine issued_by_class[%s]: uninterrupted delta %d, fast-forwarded %d" name du df;
      let bu =
        assoc0_f cls u.Engine.fu_busy_integral -. assoc0_f cls p.Engine.fu_busy_integral
      in
      let bf = assoc0_f cls f.Engine.fu_busy_integral in
      if not (approx bu bf) then
        err "engine fu_busy_integral[%s]: uninterrupted delta %g, fast-forwarded %g" name bu bf)
    classes;
  let flt name u p f =
    if not (approx (u -. p) f) then
      err "engine %s: uninterrupted delta %g, fast-forwarded %g" name (u -. p) f
  in
  flt "dynamic_fu_energy_pj" u.Engine.dynamic_fu_energy_pj p.Engine.dynamic_fu_energy_pj
    f.Engine.dynamic_fu_energy_pj;
  flt "dynamic_reg_energy_pj" u.Engine.dynamic_reg_energy_pj p.Engine.dynamic_reg_energy_pj
    f.Engine.dynamic_reg_energy_pj

(* Derived histogram statistics (.mean/.min/.max) are not additive over
   epochs — a delta of means is meaningless — so only the counter paths
   participate in the delta comparison. *)
let derived_path path =
  List.exists (fun suf -> Filename.check_suffix path suf) [ ".mean"; ".min"; ".max" ]

let diff_sim_stats ~errs u_end probe f =
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let lookup path xs = match List.assoc_opt path xs with Some v -> v | None -> 0.0 in
  List.iter
    (fun (path, uv) ->
      if not (derived_path path) then begin
        let du = uv -. lookup path probe in
        let fv = lookup path f in
        if not (approx du fv) then
          err "system stat %s: uninterrupted delta %g, fast-forwarded %g" path du fv
      end)
    u_end;
  (* a path F has but U lacks would mean the topologies differ *)
  List.iter
    (fun (path, _) ->
      if not (List.mem_assoc path u_end) then
        err "system stat %s: present in fast-forwarded run only" path)
    f

let rec drop n = function _ :: tl when n > 0 -> drop (n - 1) tl | l -> l

let mem_section_snapshot label ckpt =
  match Ckpt.section ckpt "memory" with
  | Some s ->
      Memory.snapshot_of_parts
        ~size:(Int64.to_int (Ckpt.find_int s "size"))
        ~brk:(Int64.to_int (Ckpt.find_int s "brk"))
        ~data:(Ckpt.find_blob s "data")
  | None -> failwith (label ^ ": checkpoint has no memory section")

(* Whether running the kernel [invocations] times back-to-back on one
   buffer set still satisfies the golden model — false for in-place
   workloads (FFT, md_grid) whose second run consumes its own output.
   Decided by the functional model alone; non-idempotent workloads keep
   every bit-identity leg but skip the golden assertions, which belong
   to the interpreter-vs-engine oracle anyway. *)
let idempotent ~seed ?func ~invocations (w : W.t) =
  let func = match func with Some f -> f | None -> W.compile w in
  let mem = Memory.create ~size:(max (1 lsl 22) (4 * W.total_buffer_bytes w)) in
  let bases = W.alloc_buffers w mem in
  w.W.init (Salam_sim.Rng.create seed) mem bases;
  let modul = { Salam_ir.Ast.funcs = [ func ]; globals = [] } in
  for _ = 1 to invocations do
    ignore
      (Salam_ir.Interp.run mem modul ~entry:func.Salam_ir.Ast.fname ~args:(W.args w ~bases))
  done;
  w.W.check mem bases

let check_fast_forward ?(memory_kind = Check_harness.Spm)
    ?(mode = Engine.default_config.Engine.mode) ?seed ?func ?(roadmark = 1) ?(invocations = 2)
    (w : W.t) =
  if roadmark < 1 || roadmark >= invocations then
    invalid_arg "check_fast_forward: need 1 <= roadmark < invocations";
  let config = config_of memory_kind mode in
  let config =
    match seed with Some s -> { config with Config.seed = s } | None -> config
  in
  match
    let errs = ref [] in
    let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
    let idem = idempotent ~seed:config.Config.seed ?func ~invocations w in
    (* U: the uninterrupted reference, probed at the roadmark *)
    let tr_u = Trace.create () in
    let probe = ref None in
    let mem_u = ref None in
    let r_u =
      Salam.simulate ~config ~trace:tr_u ?func ~invocations
        ~probe:(roadmark, fun p -> probe := Some p)
        ~inspect:(fun m -> mem_u := Some (Memory.snapshot m))
        w
    in
    let p = match !probe with Some p -> p | None -> failwith "probe never fired" in
    (* F: detailed capture at the roadmark, restore, finish *)
    let capture_snap = Salam.capture ~config ?func ~invocations:roadmark w in
    let tr_f = Trace.create () in
    let mem_f = ref None in
    let r_f =
      Salam.simulate ~config ~trace:tr_f ?func ~invocations ~from:capture_snap
        ~inspect:(fun m -> mem_f := Some (Memory.snapshot m))
        w
    in
    (* W: interpreter warm-up to the same roadmark, restore, finish *)
    let warm_snap = Salam.warm_up ~config ?func ~invocations:roadmark w in
    let mem_w = ref None in
    let r_w =
      Salam.simulate ~config ?func ~invocations ~from:warm_snap
        ~inspect:(fun m -> mem_w := Some (Memory.snapshot m))
        w
    in
    let mem_u = Option.get !mem_u and mem_f = Option.get !mem_f and mem_w = Option.get !mem_w in
    (* golden models: only meaningful when repeated invocations are *)
    if idem then begin
      if not r_u.Salam.correct then err "uninterrupted run fails the workload's golden model";
      if not r_f.Salam.correct then err "capture round-trip fails the workload's golden model";
      if not r_w.Salam.correct then err "warm-up round-trip fails the workload's golden model"
    end;
    (* final memory images: buffers, MMRs (status and return value) and
       allocator state all live here *)
    if not (Memory.snapshot_equal mem_u mem_f) then
      err "final memory differs: uninterrupted vs capture round-trip";
    if not (Memory.snapshot_equal mem_f mem_w) then
      err "final memory differs: capture round-trip vs interpreter warm-up";
    (* post-roadmark statistics *)
    diff_engine_stats ~errs r_u.Salam.stats p.Salam.pr_stats r_f.Salam.stats;
    diff_sim_stats ~errs r_u.Salam.sim_stats p.Salam.pr_sim_stats r_f.Salam.sim_stats;
    (* the two restored runs start from bit-identical state and must be
       indistinguishable from each other, floats included *)
    if r_f.Salam.stats <> r_w.Salam.stats then
      err "capture-restored and warm-up-restored engine statistics differ";
    if r_f.Salam.sim_stats <> r_w.Salam.sim_stats then
      err "capture-restored and warm-up-restored system statistics differ";
    (* trace: F runs at the same absolute ticks as U past the roadmark,
       so its stream must equal U's suffix with no normalization *)
    let u_suffix = drop p.Salam.pr_trace_events (Trace.to_lines tr_u) in
    (match Trace.first_divergence u_suffix (Trace.to_lines tr_f) with
    | Some d -> err "trace streams diverge: %s" (Trace.divergence_to_string d)
    | None -> ());
    (* warm-up fidelity at the checkpoint level: the interpreter and the
       detailed engine must reach byte-identical memory (the checkpoints
       as a whole differ only in tick) *)
    let cap_mem = mem_section_snapshot "capture" capture_snap.Salam.snap_ckpt in
    let warm_mem = mem_section_snapshot "warm-up" warm_snap.Salam.snap_ckpt in
    if not (Memory.snapshot_equal cap_mem warm_mem) then
      err "roadmark memory differs: detailed capture vs interpreter warm-up";
    (* disk round-trip *)
    let path = Filename.temp_file "salam_snapshot" ".ckpt" in
    Fun.protect
      ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        Salam.save_snapshot warm_snap path;
        let loaded = Salam.load_snapshot path in
        if loaded <> warm_snap then err "snapshot changed across a save/load round-trip");
    match List.rev !errs with [] -> Ok () | es -> Error (String.concat "; " es)
  with
  | result -> result
  | exception Ckpt.Invalid msg -> Error ("invalid checkpoint: " ^ msg)
  | exception Salam_ir.Interp.Trap msg -> Error ("interpreter trap: " ^ msg)
  | exception Engine.Invariant_violation msg -> Error ("engine invariant violation: " ^ msg)
  | exception Engine.Runtime_error msg -> Error ("engine runtime error: " ^ msg)
  | exception Failure msg -> Error msg
  | exception Invalid_argument msg -> Error ("invalid argument: " ^ msg)

let check_workload ?memory_kind ?mode ?func ?roadmark ?invocations (w : W.t) =
  let memory_kind = Option.value memory_kind ~default:Check_harness.Spm in
  let mode = Option.value mode ~default:Engine.default_config.Engine.mode in
  let roadmark = Option.value roadmark ~default:1 in
  let invocations = Option.value invocations ~default:2 in
  {
    r_workload = w.W.name;
    r_memory = memory_kind;
    r_mode = mode;
    r_roadmark = roadmark;
    r_invocations = invocations;
    r_result = check_fast_forward ~memory_kind ~mode ?func ~roadmark ~invocations w;
  }

let check_all ?(memory_kinds = [ Check_harness.Spm ]) ?(modes = [ Engine.Dynamic; Engine.Compiled ])
    ?roadmark ?invocations workloads =
  List.concat_map
    (fun w ->
      List.concat_map
        (fun memory_kind ->
          List.map (fun mode -> check_workload ~memory_kind ~mode ?roadmark ?invocations w) modes)
        memory_kinds)
    workloads

let report_to_string r =
  Printf.sprintf "%-14s %-5s %-8s ff@%d/%d %s" r.r_workload (memory_kind_label r.r_memory)
    (Engine.mode_to_string r.r_mode) r.r_roadmark r.r_invocations
    (match r.r_result with Ok () -> "ok" | Error msg -> "FAIL: " ^ msg)
