open Salam_ir
open Salam_frontend
module W = Salam_workloads.Workload
module Rng = Salam_sim.Rng

(* Every generated kernel works over one f64 array [a] and one i32 array
   [b], both of [n_elems] elements. Array indices are either literals in
   [0, n_elems) or loop indices of enclosing loops whose bounds never
   exceed [n_elems], so generated kernels are in-bounds by
   construction. Division is only ever by a non-zero literal, so they
   are also trap-free by construction: any trap is a finding. *)
let n_elems = 16

let workload_of_kernel name (k : Lang.kernel) : W.t =
  {
    W.name;
    kernel = k;
    buffers = [ ("a", n_elems * 8); ("b", n_elems * 4) ];
    scalar_args = [];
    init =
      (fun rng mem bases ->
        Memory.write_f64_array mem bases.(0)
          (Array.init n_elems (fun _ -> Rng.float rng 16.0 -. 8.0));
        Memory.write_i32_array mem bases.(1)
          (Array.init n_elems (fun _ -> Rng.int rng 256 - 128)));
    check = (fun _ _ -> true);
  }

(* --- generator --------------------------------------------------------- *)

type gctx = { rng : Rng.t; mutable loops : string list; mutable fresh : int }

let pick ctx xs = List.nth xs (Rng.int ctx.rng (List.length xs))

let gen_index ctx =
  match ctx.loops with
  | [] -> Lang.Int_lit (Int64.of_int (Rng.int ctx.rng n_elems))
  | ls ->
      if Rng.bool ctx.rng then Lang.Int_lit (Int64.of_int (Rng.int ctx.rng n_elems))
      else Lang.Var (pick ctx ls)

let rec gen_iexpr ctx depth =
  if depth <= 0 || Rng.int ctx.rng 3 = 0 then
    match Rng.int ctx.rng 4 with
    | 0 -> Lang.Int_lit (Int64.of_int (Rng.int ctx.rng 64))
    | 1 -> Lang.Var (pick ctx [ "t0"; "t1" ])
    | 2 -> Lang.Index ("b", [ gen_index ctx ])
    | _ -> (
        match ctx.loops with
        | [] -> Lang.Var (pick ctx [ "t0"; "t1" ])
        | ls -> Lang.Var (pick ctx ls))
  else
    match Rng.int ctx.rng 5 with
    | 0 -> Lang.Binop (Lang.Add, gen_iexpr ctx (depth - 1), gen_iexpr ctx (depth - 1))
    | 1 -> Lang.Binop (Lang.Sub, gen_iexpr ctx (depth - 1), gen_iexpr ctx (depth - 1))
    | 2 -> Lang.Binop (Lang.Mul, gen_iexpr ctx (depth - 1), gen_iexpr ctx (depth - 1))
    | 3 ->
        (* divisor is a non-zero literal: division by zero cannot occur
           by construction, so any trap is a real finding *)
        Lang.Binop
          (Lang.Div, gen_iexpr ctx (depth - 1), Lang.Int_lit (Int64.of_int (1 + Rng.int ctx.rng 9)))
    | _ ->
        Lang.Binop
          (Lang.Rem, gen_iexpr ctx (depth - 1), Lang.Int_lit (Int64.of_int (1 + Rng.int ctx.rng 9)))

let rec gen_fexpr ctx depth =
  if depth <= 0 || Rng.int ctx.rng 3 = 0 then
    match Rng.int ctx.rng 3 with
    | 0 ->
        (* eighths are exact in binary, keeping printed counterexamples
           round-trippable *)
        Lang.Float_lit (float_of_int (Rng.int ctx.rng 128 - 64) /. 8.0)
    | 1 -> Lang.Var (pick ctx [ "x"; "y" ])
    | _ -> Lang.Index ("a", [ gen_index ctx ])
  else
    match Rng.int ctx.rng 5 with
    | 0 -> Lang.Binop (Lang.Add, gen_fexpr ctx (depth - 1), gen_fexpr ctx (depth - 1))
    | 1 -> Lang.Binop (Lang.Sub, gen_fexpr ctx (depth - 1), gen_fexpr ctx (depth - 1))
    | 2 | 3 -> Lang.Binop (Lang.Mul, gen_fexpr ctx (depth - 1), gen_fexpr ctx (depth - 1))
    | _ ->
        Lang.Binop
          (Lang.Div, gen_fexpr ctx (depth - 1),
           Lang.Float_lit (float_of_int (1 + Rng.int ctx.rng 4)))

let gen_cond ctx = Lang.Cmp (pick ctx [ Lang.Lt; Lang.Le; Lang.Gt; Lang.Eq ],
                             gen_iexpr ctx 1, gen_iexpr ctx 1)

let rec gen_stmt ctx depth =
  match Rng.int ctx.rng (if depth > 0 then 7 else 5) with
  | 0 -> Lang.Assign (pick ctx [ "x"; "y" ], gen_fexpr ctx 2)
  | 1 -> Lang.Assign (pick ctx [ "t0"; "t1" ], gen_iexpr ctx 2)
  | 2 -> Lang.Store ("a", [ gen_index ctx ], gen_fexpr ctx 2)
  | 3 -> Lang.Store ("b", [ gen_index ctx ], gen_iexpr ctx 2)
  | 4 -> Lang.Store ("a", [ gen_index ctx ], gen_fexpr ctx 2)
  | 5 -> Lang.If (gen_cond ctx, gen_block ctx (depth - 1) (1 + Rng.int ctx.rng 2),
                  gen_block ctx (depth - 1) (Rng.int ctx.rng 2))
  | _ ->
      let index = Printf.sprintf "k%d" ctx.fresh in
      ctx.fresh <- ctx.fresh + 1;
      let trips = 2 + Rng.int ctx.rng 7 in
      let unroll = pick ctx [ 1; 1; 2; 4 ] in
      let saved = ctx.loops in
      ctx.loops <- index :: ctx.loops;
      let body = gen_block ctx (depth - 1) (1 + Rng.int ctx.rng 3) in
      ctx.loops <- saved;
      Lang.For
        {
          Lang.index;
          from_ = Lang.Int_lit 0L;
          to_ = Lang.Int_lit (Int64.of_int trips);
          step = 1;
          unroll;
          body;
        }

and gen_block ctx depth n = List.init n (fun _ -> gen_stmt ctx depth)

let gen_kernel ~seed ~case =
  let rng = Rng.create (Int64.logxor seed (Int64.mul (Int64.of_int (case + 1)) 0x9E3779B97F4A7C15L)) in
  let ctx = { rng; loops = []; fresh = 0 } in
  let body =
    [
      Lang.Decl (Ty.F64, "x", Some (Lang.Float_lit 1.0));
      Lang.Decl (Ty.F64, "y", Some (Lang.Float_lit 2.0));
      Lang.Decl (Ty.I32, "t0", Some (Lang.Int_lit 3L));
      Lang.Decl (Ty.I32, "t1", Some (Lang.Int_lit 5L));
    ]
    @ gen_block ctx 2 (3 + Rng.int rng 4)
  in
  {
    Lang.kname = Printf.sprintf "fuzz_%d" case;
    ret = Ty.Void;
    params = [ Lang.array "a" Ty.F64 [ n_elems ]; Lang.array "b" Ty.I32 [ n_elems ] ];
    body;
  }

(* --- kernel printing (for counterexample reports) ---------------------- *)

let rec pp_expr ppf (e : Lang.expr) =
  match e with
  | Lang.Int_lit i -> Format.fprintf ppf "%Ld" i
  | Lang.Float_lit f -> Format.fprintf ppf "%h" f
  | Lang.Var v -> Format.pp_print_string ppf v
  | Lang.Index (a, idx) ->
      Format.fprintf ppf "%s%a" a
        (Format.pp_print_list (fun ppf e -> Format.fprintf ppf "[%a]" pp_expr e))
        idx
  | Lang.Addr_of (a, idx) ->
      Format.fprintf ppf "&%s%a" a
        (Format.pp_print_list (fun ppf e -> Format.fprintf ppf "[%a]" pp_expr e))
        idx
  | Lang.Binop (op, l, r) ->
      let s =
        match op with
        | Lang.Add -> "+" | Lang.Sub -> "-" | Lang.Mul -> "*" | Lang.Div -> "/"
        | Lang.Rem -> "%" | Lang.Shl -> "<<" | Lang.Shr -> ">>"
        | Lang.Band -> "&" | Lang.Bor -> "|" | Lang.Bxor -> "^"
      in
      Format.fprintf ppf "(%a %s %a)" pp_expr l s pp_expr r
  | Lang.Neg e -> Format.fprintf ppf "(-%a)" pp_expr e
  | Lang.Cmp (c, l, r) ->
      let s =
        match c with
        | Lang.Lt -> "<" | Lang.Le -> "<=" | Lang.Gt -> ">"
        | Lang.Ge -> ">=" | Lang.Eq -> "==" | Lang.Ne -> "!="
      in
      Format.fprintf ppf "(%a %s %a)" pp_expr l s pp_expr r
  | Lang.Not e -> Format.fprintf ppf "(!%a)" pp_expr e
  | Lang.And (l, r) -> Format.fprintf ppf "(%a && %a)" pp_expr l pp_expr r
  | Lang.Or (l, r) -> Format.fprintf ppf "(%a || %a)" pp_expr l pp_expr r
  | Lang.Cond (c, t, e) -> Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr e
  | Lang.Call (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_expr)
        args
  | Lang.Cast (ty, e) -> Format.fprintf ppf "(%s)%a" (Ty.to_string ty) pp_expr e

let rec pp_stmt ppf (s : Lang.stmt) =
  match s with
  | Lang.Decl (ty, n, e) ->
      Format.fprintf ppf "@[<h>%s %s%a;@]" (Ty.to_string ty) n
        (Format.pp_print_option (fun ppf e -> Format.fprintf ppf " = %a" pp_expr e))
        e
  | Lang.Assign (n, e) -> Format.fprintf ppf "@[<h>%s = %a;@]" n pp_expr e
  | Lang.Store (a, idx, e) ->
      Format.fprintf ppf "@[<h>%a = %a;@]" pp_expr (Lang.Index (a, idx)) pp_expr e
  | Lang.Store_ptr (p, ty, e) ->
      Format.fprintf ppf "@[<h>*(%s*)%a = %a;@]" (Ty.to_string ty) pp_expr p pp_expr e
  | Lang.If (c, t, e) ->
      Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,}" pp_expr c pp_block t;
      if e <> [] then Format.fprintf ppf "@[<v 2> else {@,%a@]@,}" pp_block e
  | Lang.For fl ->
      Format.fprintf ppf "@[<v 2>for %s in [%a, %a) step %d unroll %d {@,%a@]@,}" fl.Lang.index
        pp_expr fl.Lang.from_ pp_expr fl.Lang.to_ fl.Lang.step fl.Lang.unroll pp_block
        fl.Lang.body
  | Lang.While (c, b) -> Format.fprintf ppf "@[<v 2>while %a {@,%a@]@,}" pp_expr c pp_block b
  | Lang.Expr_stmt e -> Format.fprintf ppf "@[<h>%a;@]" pp_expr e
  | Lang.Return e ->
      Format.fprintf ppf "@[<h>return%a;@]"
        (Format.pp_print_option (fun ppf e -> Format.fprintf ppf " %a" pp_expr e))
        e

and pp_block ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_kernel ppf (k : Lang.kernel) =
  Format.fprintf ppf "@[<v 2>kernel %s(%s) {@,%a@]@,}" k.Lang.kname
    (String.concat ", "
       (List.map
          (fun (p : Lang.param) ->
            match p.Lang.dims with
            | [] -> Ty.to_string p.Lang.elem ^ " " ^ p.Lang.pname
            | dims ->
                Ty.to_string p.Lang.elem ^ " " ^ p.Lang.pname
                ^ String.concat "" (List.map (Printf.sprintf "[%d]") dims))
          k.Lang.params))
    pp_block k.Lang.body

let kernel_to_string k = Format.asprintf "%a" pp_kernel k

(* --- planted bugs ------------------------------------------------------ *)

(* Flip the first floating-point add to a subtract (or, failing that,
   the first multiply to an add). Only float arithmetic is touched:
   integer and control instructions feed loop bounds and addresses, and
   corrupting those could turn a terminating kernel into an infinite
   loop instead of a wrong answer. *)
let plant_float_bug (f : Ast.func) =
  let planted = ref false in
  let flip target replacement =
    Ast.map_instrs f (fun instr ->
        match instr with
        | Ast.Binop ({ op; _ } as b) when (not !planted) && op = target ->
            planted := true;
            Ast.Binop { b with op = replacement }
        | _ -> instr)
  in
  flip Ast.Fadd Ast.Fsub;
  if not !planted then flip Ast.Fmul Ast.Fadd;
  f

(* --- shrinking --------------------------------------------------------- *)

(* One-step shrink candidates of a statement list: delete a statement,
   unwrap a loop to a single iteration, collapse an [if] to one branch,
   or shrink inside a nested block. *)
let rec shrink_stmts stmts =
  let cands = ref [] in
  List.iteri
    (fun i s ->
      let replace rs = List.concat (List.mapi (fun j s' -> if i = j then rs else [ s' ]) stmts) in
      cands := replace [] :: !cands;
      (match s with
      | Lang.For fl ->
          cands :=
            replace (Lang.Decl (Ty.I32, fl.Lang.index, Some fl.Lang.from_) :: fl.Lang.body)
            :: !cands;
          List.iter
            (fun body' -> cands := replace [ Lang.For { fl with Lang.body = body' } ] :: !cands)
            (shrink_stmts fl.Lang.body)
      | Lang.If (c, t, e) ->
          cands := replace t :: replace e :: !cands;
          List.iter
            (fun t' -> cands := replace [ Lang.If (c, t', e) ] :: !cands)
            (shrink_stmts t);
          List.iter
            (fun e' -> cands := replace [ Lang.If (c, t, e') ] :: !cands)
            (shrink_stmts e)
      | _ -> ()))
    stmts;
  List.rev !cands

let shrink ~max_attempts ~still_fails (k : Lang.kernel) =
  let attempts = ref 0 in
  let rec go k =
    let next =
      List.find_opt
        (fun body ->
          !attempts < max_attempts
          && begin
               incr attempts;
               still_fails { k with Lang.body }
             end)
        (shrink_stmts k.Lang.body)
    in
    match next with Some body -> go { k with Lang.body } | None -> k
  in
  go k

(* --- campaign ---------------------------------------------------------- *)

type failure_kind =
  | Compile_failure of string
  | Oracle of Check_oracle.failure
  | Snapshot of string
      (** a fast-forwarded run diverged from the uninterrupted one *)
  | Parallel of string
      (** an island record/replay run diverged from the sequential one *)

type case_failure = {
  cf_case : int;
  cf_kernel : Lang.kernel;
  cf_shrunk : Lang.kernel;
  cf_failure : failure_kind;
  cf_trace : string list;
      (** last engine-side trace events of the shrunk reproduction *)
}

(* Events kept when re-running a shrunk failure under a ring sink. *)
let trace_ring_capacity = 32

let failure_kind_to_string = function
  | Compile_failure msg -> "frontend rejected generated kernel: " ^ msg
  | Oracle f -> Check_oracle.failure_to_string f
  | Snapshot msg -> "snapshot: " ^ msg
  | Parallel msg -> "parallel: " ^ msg

(* Run one generated kernel through the oracle: the interpreter-vs-engine
   leg first, then — when it agrees — the compiled-vs-dynamic engine leg,
   which must also be bit-identical. Compilation happens twice on
   purpose: [Ast.func] is mutable, so the engine side (and any planted
   mutation) must get its own copy. *)
let run_kernel ?mutate ?(memory_kind = Check_harness.Spm) ?trace ~data_seed kernel =
  match Compile.kernel kernel with
  | exception Compile.Error msg -> Some (Compile_failure msg)
  | exception Lower.Error msg -> Some (Compile_failure msg)
  | func -> (
      let engine_func =
        match mutate with None -> None | Some m -> Some (m (Compile.kernel kernel))
      in
      let w = workload_of_kernel kernel.Lang.kname kernel in
      match
        Check_oracle.check_workload ~memory_kind ~seed:data_seed ~func ?engine_func ?trace w
      with
      | Error f -> Some (Oracle f)
      | Ok () -> (
          (* both modes run the same (possibly mutated) function: a
             planted functional bug is the interp leg's to catch, this leg
             owns scheduling-equivalence *)
          let mode_func =
            match engine_func with Some f -> f | None -> func
          in
          match
            Check_oracle.check_modes ~memory_kind ~seed:data_seed ~func:mode_func ?trace w
          with
          | Error f -> Some (Oracle f)
          | Ok () -> (
              (* snapshot leg: fast-forwarding to a mid-schedule roadmark
                 must be bit-identical. Runs on the same (possibly
                 mutated) function — the leg is self-consistent, so a
                 planted functional bug stays the interp leg's catch. *)
              match
                Check_snapshot.check_fast_forward ~memory_kind ~seed:data_seed ~func:mode_func
                  ~roadmark:1 ~invocations:2 w
              with
              | Error msg -> Some (Snapshot msg)
              | Ok () -> (
                  (* parallel leg: the island record/replay path must be
                     bit-identical to the sequential kernel on the same
                     (possibly mutated) function *)
                  match
                    Check_parallel.check_workload ~memory_kind ~seed:data_seed ~func:mode_func w
                  with
                  | Ok () -> None
                  | Error msg -> Some (Parallel msg)))))

(* Replay a failing (shrunk) kernel under a bounded ring sink and return
   the tail of the engine-side event stream — the crash-dump context a
   report prints alongside the counterexample. *)
let capture_trace ?mutate ~memory_kind ~data_seed kernel =
  let sink = Salam_obs.Trace.create ~ring:trace_ring_capacity () in
  (match run_kernel ?mutate ~memory_kind ~trace:sink ~data_seed kernel with
  | Some _ | None -> ());
  Salam_obs.Trace.to_lines sink

let run ?mutate ?(memory_kind = Check_harness.Spm) ?on_case ~seed ~count () =
  let failures = ref [] in
  for case = 0 to count - 1 do
    (match on_case with Some f -> f case | None -> ());
    let kernel = gen_kernel ~seed ~case in
    let data_seed = Int64.add seed (Int64.of_int case) in
    match run_kernel ?mutate ~memory_kind ~data_seed kernel with
    | None -> ()
    | Some failure ->
        (* a shrink candidate must reproduce the same kind of failure:
           deleting a declaration that is still referenced produces a
           compile error, which must not pass for an oracle divergence *)
        let same_kind f =
          match (f, failure) with
          | Compile_failure _, Compile_failure _ -> true
          | Oracle _, Oracle _ -> true
          | Snapshot _, Snapshot _ -> true
          | Parallel _, Parallel _ -> true
          | (Compile_failure _ | Oracle _ | Snapshot _ | Parallel _), _ -> false
        in
        let still_fails k =
          match run_kernel ?mutate ~memory_kind ~data_seed k with
          | Some f -> same_kind f
          | None -> false
        in
        let shrunk = shrink ~max_attempts:200 ~still_fails kernel in
        let cf_trace = capture_trace ?mutate ~memory_kind ~data_seed shrunk in
        failures :=
          {
            cf_case = case;
            cf_kernel = kernel;
            cf_shrunk = shrunk;
            cf_failure = failure;
            cf_trace;
          }
          :: !failures
  done;
  List.rev !failures
