(** Snapshot oracle: proves fast-forwarded runs bit-identical to
    uninterrupted ones.

    For each (workload, memory attachment, engine mode, roadmark) point
    it runs the same multi-invocation schedule three ways — detailed
    throughout, detailed-capture-then-restore, and
    interpreter-warm-up-then-restore — and demands byte-equal final
    memory, exactly matching post-roadmark statistics (end-of-run minus
    roadmark probe; counters exact, energy floats within relative
    tolerance), an exactly matching post-roadmark trace stream at the
    same absolute ticks, byte-equal roadmark memory between the warm-up
    and capture checkpoints, and a lossless disk round-trip of the
    snapshot. *)

type report = {
  r_workload : string;
  r_memory : Check_harness.memory_kind;
  r_mode : Salam_engine.Engine.mode;
  r_roadmark : int;  (** invocation count covered by the snapshot *)
  r_invocations : int;  (** total schedule length *)
  r_result : (unit, string) result;
}

val memory_kind_label : Check_harness.memory_kind -> string
(** ["spm"], ["cache"] or ["dram"]. *)

val config_of : Check_harness.memory_kind -> Salam_engine.Engine.mode -> Salam.Config.t
(** The {!Salam.Config.t} the oracle simulates under — the default
    configuration with the memory attachment and engine mode swapped
    in. *)

val check_fast_forward :
  ?memory_kind:Check_harness.memory_kind ->
  ?mode:Salam_engine.Engine.mode ->
  ?seed:int64 ->
  ?func:Salam_ir.Ast.func ->
  ?roadmark:int ->
  ?invocations:int ->
  Salam_workloads.Workload.t ->
  (unit, string) result
(** Run all legs for one point. Defaults: SPM, the engine's default
    mode, the default dataset seed, [roadmark = 1], [invocations = 2].
    [?func] substitutes an
    already-compiled kernel, bypassing the name-keyed compile cache —
    required for generated fuzz kernels. Raises [Invalid_argument]
    unless [1 <= roadmark < invocations]; every failure of the checked
    system itself is reported as [Error]. *)

val check_workload :
  ?memory_kind:Check_harness.memory_kind ->
  ?mode:Salam_engine.Engine.mode ->
  ?func:Salam_ir.Ast.func ->
  ?roadmark:int ->
  ?invocations:int ->
  Salam_workloads.Workload.t ->
  report

val check_all :
  ?memory_kinds:Check_harness.memory_kind list ->
  ?modes:Salam_engine.Engine.mode list ->
  ?roadmark:int ->
  ?invocations:int ->
  Salam_workloads.Workload.t list ->
  report list
(** The full matrix: every workload under every memory kind (default
    SPM only) and every engine mode (default both). *)

val report_to_string : report -> string
