(** Sequential-vs-parallel differential oracle.

    [System.run ~island_domains] (and its [record_all] determinism mode)
    must be bit-identical to the sequential kernel. Each check runs the
    subject sequentially, then under [record_all] and island pools of 2
    and 4 domains, and requires byte-equal final memory, identical
    return values / cycles / statistics, and byte-equal trace streams.
    Errors carry a human-readable description of the first mismatch. *)

val check_workload :
  ?memory_kind:Check_harness.memory_kind ->
  ?seed:int64 ->
  ?func:Salam_ir.Ast.func ->
  Salam_workloads.Workload.t ->
  (unit, string) result
(** Single-accelerator engine run (SPM / cache / DRAM attachment) —
    exercises the record/replay path itself. *)

val check_scenarios : unit -> (unit, string) result
(** The three CNN pipeline integrations — three accelerators, so real
    multi-island batches: cross-island MMR starts, DMA, stream FIFOs,
    interrupts. *)
