(** Engine-side runner for the differential validation harness.

    Builds the same system topology as [Salam.simulate] (fabric, cluster,
    accelerator, memory attachment) but with the engine's timing-invariant
    checker enabled, and hands back everything the oracle needs to
    compare against the interpreter: the live backing store, the buffer
    base addresses, the return value, the engine statistics and (for
    cache configurations) the cache handle with its own end-of-run
    invariant report. *)

type memory_kind =
  | Spm  (** private scratchpad holding every kernel buffer *)
  | Cache of { size : int; ways : int }  (** private cache over the fabric *)
  | Dram  (** no local memory: straight to the fabric *)

type run = {
  memory : Salam_ir.Memory.t;  (** the system backing store, post-run *)
  bases : int64 array;  (** buffer base addresses, in buffer order *)
  ret : Salam_ir.Bits.t option;
  stats : Salam_engine.Engine.run_stats;
  cache : Salam_mem.Cache.t option;
  cache_invariant_errors : string list;
      (** [Cache.invariant_errors] at quiescence; empty for SPM/DRAM *)
}

val run_engine :
  ?memory_kind:memory_kind ->
  ?seed:int64 ->
  ?mode:Salam_engine.Engine.mode ->
  ?func:Salam_ir.Ast.func ->
  ?trace:Salam_obs.Trace.sink ->
  ?island_domains:int ->
  ?record_all:bool ->
  ?profile:Salam_hw.Profile.t ->
  Salam_workloads.Workload.t ->
  run
(** Run the workload through the full timing stack with
    [Engine.config.check = true]. [?mode] selects the engine's scheduling
    implementation (default: the engine's own default). [?func]
    substitutes an already-compiled (possibly deliberately mutated)
    function for the workload's kernel — the fuzzer uses this to plant
    bugs and to bypass the per-name compile cache. [?trace] installs a
    trace sink on the run's private system. [?profile] elaborates the
    datapath under a non-default hardware characterization (e.g. a
    [Salam_config] database row at another cycle time). Raises
    [Engine.Invariant_violation] if a timing invariant breaks mid-run and
    [Engine.Runtime_error] if the simulated program faults. *)
