(** Deterministic trace scenarios backing the golden-trace regression
    suite.

    Each scenario is a tiny, fully deterministic workload exercising one
    memory path of the timing stack — a scratchpad vector add, the same
    kernel behind a private cache, a DMA block copy through a shared
    SPM, and a fast-forwarded vector add restored from a roadmark
    checkpoint (pinning the restore path and roadmark alignment).
    [capture] runs a scenario under a fresh sink and returns the
    canonical text trace; the golden files under [test/golden/] are
    blessed copies of exactly this output, so any engine or memory
    timing change shows up as a diff. *)

val vecadd_workload : Salam_workloads.Workload.t
(** 4-element f64 vector add with exact-in-binary inputs. *)

val scenarios :
  (string * Salam_obs.Trace.category list option * (Salam_obs.Trace.sink -> bool)) list
(** Name, sink categories ([None] = default set) and runner. The runner
    executes the scenario with the sink installed and returns whether the
    functional result was correct. The [engine_compile_vecadd] scenario
    opts in to {!Salam_obs.Trace.Engine_compile}, pinning the engine's
    region partition in the golden suite. *)

val names : string list

val capture : string -> string
(** Run a scenario under a fresh sink with the scenario's categories and
    return the canonical text trace. Raises [Invalid_argument] on an
    unknown name and [Failure] if the scenario computes a wrong result. *)
