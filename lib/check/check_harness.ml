open Salam_ir
open Salam_soc
module W = Salam_workloads.Workload
module Engine = Salam_engine.Engine

type memory_kind =
  | Spm
  | Cache of { size : int; ways : int }
  | Dram

type run = {
  memory : Memory.t;
  bases : int64 array;
  ret : Bits.t option;
  stats : Engine.run_stats;
  cache : Salam_mem.Cache.t option;
  cache_invariant_errors : string list;
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (2 * p) in
  go 256

let run_engine ?(memory_kind = Spm) ?(seed = 42L)
    ?(mode = Engine.default_config.Engine.mode) ?func ?trace ?island_domains ?record_all
    ?profile (w : W.t) =
  let func = match func with Some f -> f | None -> W.compile w in
  let sys = System.create ?trace () in
  let fabric = Fabric.create sys () in
  let cluster = Cluster.create sys fabric ~name:"check" ~clock_mhz:500.0 () in
  (* the whole point of this harness: every run validates the engine's
     own timing invariants while it executes *)
  let engine_config = { Engine.default_config with Engine.check = true; Engine.mode } in
  let acc =
    Accelerator.create sys ~name:w.W.name ~clock_mhz:500.0 ?profile ~engine_config func
  in
  Cluster.add_accelerator cluster acc;
  let buffer_bytes = W.total_buffer_bytes w in
  let cache = ref None in
  let bases =
    match memory_kind with
    | Spm ->
        let spm_size = round_pow2 (buffer_bytes + (64 * List.length w.W.buffers)) in
        let base, _ = Cluster.add_private_spm cluster acc ~size:spm_size () in
        (* carve the workload buffers out of the SPM region, 64-byte
           aligned, exactly as [Salam.simulate] does *)
        let next = ref base in
        Array.of_list
          (List.map
             (fun (_, bytes) ->
               let b = !next in
               next := Int64.add !next (Int64.of_int ((bytes + 63) / 64 * 64));
               b)
             w.W.buffers)
    | Cache { size; ways } ->
        let c =
          Cluster.add_private_cache cluster acc ~size
            ~config:(fun cfg -> { cfg with Salam_mem.Cache.ways })
            ()
        in
        cache := Some c;
        W.alloc_buffers w (System.backing sys)
    | Dram -> W.alloc_buffers w (System.backing sys)
  in
  w.W.init (Salam_sim.Rng.create seed) (System.backing sys) bases;
  let ret = ref None and finished = ref false in
  Accelerator.launch acc
    ~args:(W.args w ~bases)
    ~on_done:(fun r ->
      ret := r;
      finished := true);
  ignore (System.run ?island_domains ?record_all sys);
  if not !finished then failwith ("Check_harness: " ^ w.W.name ^ " did not finish");
  let cache_invariant_errors =
    match !cache with Some c -> Salam_mem.Cache.invariant_errors c | None -> []
  in
  {
    memory = System.backing sys;
    bases;
    ret = !ret;
    stats = Accelerator.stats acc;
    cache = !cache;
    cache_invariant_errors;
  }
