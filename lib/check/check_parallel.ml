(* Sequential-vs-parallel differential oracle for island execution.

   [System.run ~island_domains] promises bit-identical behaviour to the
   sequential kernel. This module enforces the promise the same way the
   compiled-vs-dynamic oracle does: run the same workload under the
   sequential kernel and under the island record/replay machinery
   (record_all on the current domain, and a real pool at 2 and 4
   domains), then require byte-equal backing memory, identical return
   values, cycle counts and statistics, and byte-equal trace streams. *)

open Salam_ir
module W = Salam_workloads.Workload
module Engine = Salam_engine.Engine
module Trace = Salam_obs.Trace
module Scn = Salam_scenarios.Cnn_pipeline

let mem_bytes (m : Memory.t) = Memory.snapshot_data (Memory.snapshot m)

(* run one engine workload and capture everything comparable *)
let capture ?memory_kind ?seed ?func ?island_domains ?record_all w =
  let tr = Trace.create () in
  let r =
    Check_harness.run_engine ?memory_kind ?seed ?func ?island_domains ?record_all ~trace:tr w
  in
  (r, mem_bytes r.Check_harness.memory, Trace.to_lines tr)

let compare_runs ~label (base, base_mem, base_lines) (par, par_mem, par_lines) =
  let fail fmt = Printf.ksprintf (fun s -> Error (label ^ ": " ^ s)) fmt in
  if not (String.equal base_mem par_mem) then fail "final memory images differ"
  else if base.Check_harness.ret <> par.Check_harness.ret then fail "return values differ"
  else if
    not
      (Int64.equal base.Check_harness.stats.Engine.cycles par.Check_harness.stats.Engine.cycles)
  then
    fail "cycle counts differ: sequential %Ld, parallel %Ld"
      base.Check_harness.stats.Engine.cycles par.Check_harness.stats.Engine.cycles
  else if base.Check_harness.stats <> par.Check_harness.stats then fail "run statistics differ"
  else
    match Trace.first_divergence base_lines par_lines with
    | Some d -> fail "trace streams diverge: %s" (Trace.divergence_to_string d)
    | None -> Ok ()

let legs = [ ("record-all", None, Some true); ("domains-2", Some 2, None); ("domains-4", Some 4, None) ]

let check_workload ?memory_kind ?(seed = 42L) ?func (w : W.t) =
  match
    let base = capture ?memory_kind ~seed ?func w in
    List.fold_left
      (fun acc (label, island_domains, record_all) ->
        match acc with
        | Error _ as e -> e
        | Ok () ->
            compare_runs ~label base
              (capture ?memory_kind ~seed ?func ?island_domains ?record_all w))
      (Ok ()) legs
  with
  | result -> result
  | exception Engine.Invariant_violation msg -> Error ("engine invariant violation: " ^ msg)
  | exception Engine.Runtime_error msg -> Error ("engine runtime error: " ^ msg)
  | exception Failure msg -> Error msg

(* The single-accelerator harness exercises record/replay but never two
   islands in one batch; the three-stage CNN pipelines do. Outcomes are
   plain data (times, correctness, per-stage cycles) and the trace sink
   sees every component, so equality here covers the cross-island
   machinery: xbar hops, DMA, MMR starts, interrupts, stream FIFOs. *)
let check_scenario ~name (run : ?island_domains:int -> ?record_all:bool ->
                          ?trace:Trace.sink -> unit -> Scn.outcome) =
  let traced ?island_domains ?record_all () =
    let tr = Trace.create () in
    let o = run ?island_domains ?record_all ~trace:tr () in
    (o, Trace.to_lines tr)
  in
  let base_o, base_lines = traced () in
  List.fold_left
    (fun acc (label, island_domains, record_all) ->
      match acc with
      | Error _ as e -> e
      | Ok () -> (
          let o, lines = traced ?island_domains ?record_all () in
          let fail fmt = Printf.ksprintf (fun s -> Error (name ^ "/" ^ label ^ ": " ^ s)) fmt in
          if o <> base_o then fail "scenario outcomes differ"
          else
            match Trace.first_divergence base_lines lines with
            | Some d -> fail "trace streams diverge: %s" (Trace.divergence_to_string d)
            | None -> Ok ()))
    (Ok ()) legs

let check_scenarios () =
  List.fold_left
    (fun acc (name, run) -> match acc with Error _ as e -> e | Ok () -> check_scenario ~name run)
    (Ok ())
    [
      ("cnn-private-spm", fun ?island_domains ?record_all ?trace () ->
        Scn.run_private_spm ?island_domains ?record_all ?trace ());
      ("cnn-shared-spm", fun ?island_domains ?record_all ?trace () ->
        Scn.run_shared_spm ?island_domains ?record_all ?trace ());
      ("cnn-streams", fun ?island_domains ?record_all ?trace () ->
        Scn.run_streams ?island_domains ?record_all ?trace ());
    ]
