(* Loadable hardware characterization database.

   The real salam-config package ships gem5-SALAM's validated 40 nm
   profile as a *database*: every functional unit characterized at a set
   of cycle times with per-op latency/power/energy/area, queryable from
   a CLI. This module is that database for our FU model: a versioned
   plain-text table format with a strict parser (loud failure on unknown
   FUs, duplicate records, missing cycle-time coverage or malformed
   numbers — the same discipline as the DSE store's codec), an
   interpolation-free profile lookup, and a process-wide registry keyed
   by content hash so design points can name the exact table they were
   measured under.

   Format (one record per line, `#` comments and blank lines ignored):

     salam-hwdb 1
     name salam-40nm
     node 40
     cycle_times 1 2 3 4 5 6 10
     reg <ct> area_um2_per_bit=<f> leak_mw_per_bit=<f> read_pj_per_bit=<f> write_pj_per_bit=<f>
     fu <class> <ct> latency=<n> pipelined=<0|1> area_um2=<f> leakage_mw=<f> dynamic_pj=<f>
     ...
     end <record-count>

   Every declared cycle time must be covered by exactly one `reg` record
   and one `fu` record per functional-unit class; the trailing `end`
   line carries the record count so a truncated file is rejected, not
   silently accepted with whatever survived. *)

module Fu = Salam_hw.Fu
module Profile = Salam_hw.Profile

type reg_spec = {
  r_area_um2_per_bit : float;
  r_leak_mw_per_bit : float;
  r_read_pj_per_bit : float;
  r_write_pj_per_bit : float;
}

type t = {
  db_name : string;
  db_node_nm : int;
  db_cycle_times : float list;  (* ascending, distinct *)
  db_fus : ((Fu.cls * float) * Profile.fu_spec) list;  (* keyed (class, cycle time) *)
  db_regs : (float * reg_spec) list;
}

let name t = t.db_name
let node_nm t = t.db_node_nm
let cycle_times t = t.db_cycle_times

let clock_mhz_of_cycle_time ct = 1000.0 /. ct

(* --- canonical text rendering ------------------------------------------- *)

(* shortest decimal that round-trips: human-readable where possible
   ("0.0035", "480"), never lossy *)
let render_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let rec go p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else go (p + 1)
    in
    go 1
  end

let fu_record_line cls ct (s : Profile.fu_spec) =
  Printf.sprintf "fu %s %s latency=%d pipelined=%d area_um2=%s leakage_mw=%s dynamic_pj=%s"
    (Fu.to_string cls) (render_float ct) s.Profile.latency
    (if s.Profile.pipelined then 1 else 0)
    (render_float s.Profile.area_um2)
    (render_float s.Profile.leakage_mw)
    (render_float s.Profile.dynamic_pj)

let reg_record_line ct r =
  Printf.sprintf
    "reg %s area_um2_per_bit=%s leak_mw_per_bit=%s read_pj_per_bit=%s write_pj_per_bit=%s"
    (render_float ct) (render_float r.r_area_um2_per_bit)
    (render_float r.r_leak_mw_per_bit) (render_float r.r_read_pj_per_bit)
    (render_float r.r_write_pj_per_bit)

(* Canonical form: header, register section, then FU records grouped by
   class in [Fu.all] order with cycle times ascending. [parse] of a
   rendered database reproduces it byte for byte, which is what lets the
   shipped seed file be checked against the compiled-in constants. *)
let render t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "salam-hwdb 1";
  line "name %s" t.db_name;
  line "node %d" t.db_node_nm;
  line "cycle_times %s" (String.concat " " (List.map render_float t.db_cycle_times));
  let records = ref 0 in
  List.iter
    (fun ct ->
      match List.assoc_opt ct t.db_regs with
      | Some r ->
          incr records;
          line "%s" (reg_record_line ct r)
      | None -> ())
    t.db_cycle_times;
  List.iter
    (fun cls ->
      List.iter
        (fun ct ->
          match List.assoc_opt (cls, ct) t.db_fus with
          | Some s ->
              incr records;
              line "%s" (fu_record_line cls ct s)
          | None -> ())
        t.db_cycle_times)
    Fu.all;
  line "end %d" !records;
  Buffer.contents buf

(* --- content hash -------------------------------------------------------- *)

(* FNV-1a 64 over the canonical text — the same hash family the DSE
   fingerprints use. The hex form is the database's identity everywhere:
   point fields, store entries, the registry. *)
let hash t =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    (render t);
  Printf.sprintf "%016Lx" !h

(* --- strict parser ------------------------------------------------------- *)

exception Bad of string

let failf fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

let fu_of_string s = List.find_opt (fun cls -> Fu.to_string cls = s) Fu.all

let parse_float ~line ~what s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> f
  | Some _ | None -> failf "line %d: %s: %S is not a finite number" line what s

let parse_pos_float ~line ~what s =
  let f = parse_float ~line ~what s in
  if f <= 0.0 then failf "line %d: %s must be positive, got %S" line what s;
  f

(* key=value fields, required in exactly the given order — the canonical
   renderer emits them that way and hand-edited tables that drop, repeat
   or reorder a field are mistakes worth hearing about *)
let parse_kvs ~line ~keys tokens =
  if List.length tokens <> List.length keys then
    failf "line %d: expected fields %s, got %d token(s)" line (String.concat " " keys)
      (List.length tokens);
  List.map2
    (fun key tok ->
      match String.index_opt tok '=' with
      | Some i when String.sub tok 0 i = key ->
          String.sub tok (i + 1) (String.length tok - i - 1)
      | Some _ | None -> failf "line %d: expected %s=<value>, got %S" line key tok)
    keys tokens

let parse text =
  try
    let lines = String.split_on_char '\n' text in
    let name = ref None and node = ref None and cycle_times = ref None in
    let fus = ref [] and regs = ref [] in
    let finished = ref None in
    let header_seen = ref false in
    let declared ~line ct =
      match !cycle_times with
      | None -> failf "line %d: record before the cycle_times declaration" line
      | Some cts ->
          if not (List.mem ct cts) then
            failf "line %d: cycle time %s is not declared in cycle_times" line
              (render_float ct);
          ct
    in
    List.iteri
      (fun i raw ->
        let lineno = i + 1 in
        let line = String.trim raw in
        if line = "" || line.[0] = '#' then ()
        else if !finished <> None then
          failf "line %d: content after the end record" lineno
        else if not !header_seen then begin
          if line <> "salam-hwdb 1" then
            failf "line %d: not a salam-hwdb version 1 file (got %S)" lineno line;
          header_seen := true
        end
        else
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | [ "name"; n ] ->
              if !name <> None then failf "line %d: duplicate name declaration" lineno;
              name := Some n
          | [ "node"; n ] -> (
              if !node <> None then failf "line %d: duplicate node declaration" lineno;
              match int_of_string_opt n with
              | Some v when v > 0 -> node := Some v
              | Some _ | None ->
                  failf "line %d: node: %S is not a positive integer" lineno n)
          | "cycle_times" :: cts -> (
              if !cycle_times <> None then
                failf "line %d: duplicate cycle_times declaration" lineno;
              if cts = [] then failf "line %d: cycle_times declares no values" lineno;
              let vs =
                List.map (parse_pos_float ~line:lineno ~what:"cycle_times value") cts
              in
              let sorted = List.sort_uniq compare vs in
              if List.length sorted <> List.length vs || sorted <> vs then
                failf "line %d: cycle_times must be distinct and ascending" lineno;
              cycle_times := Some vs)
          | "fu" :: cls_name :: ct :: fields -> (
              match fu_of_string cls_name with
              | None -> failf "line %d: unknown functional unit %S" lineno cls_name
              | Some cls ->
                  let ct =
                    declared ~line:lineno
                      (parse_pos_float ~line:lineno ~what:"fu cycle time" ct)
                  in
                  if List.mem_assoc (cls, ct) !fus then
                    failf "line %d: duplicate record for %s at %sns" lineno
                      (Fu.to_string cls) (render_float ct);
                  let [@warning "-8"] [ lat; pip; area; leak; dyn ] =
                    parse_kvs ~line:lineno
                      ~keys:[ "latency"; "pipelined"; "area_um2"; "leakage_mw"; "dynamic_pj" ]
                      fields
                  in
                  let latency =
                    match int_of_string_opt lat with
                    | Some v when v >= 1 -> v
                    | Some _ | None ->
                        failf "line %d: latency: %S is not a positive integer" lineno lat
                  in
                  let pipelined =
                    match pip with
                    | "1" -> true
                    | "0" -> false
                    | _ -> failf "line %d: pipelined must be 0 or 1, got %S" lineno pip
                  in
                  fus :=
                    ( (cls, ct),
                      {
                        Profile.latency;
                        pipelined;
                        area_um2 = parse_float ~line:lineno ~what:"area_um2" area;
                        leakage_mw = parse_float ~line:lineno ~what:"leakage_mw" leak;
                        dynamic_pj = parse_float ~line:lineno ~what:"dynamic_pj" dyn;
                      } )
                    :: !fus)
          | "reg" :: ct :: fields ->
              let ct =
                declared ~line:lineno
                  (parse_pos_float ~line:lineno ~what:"reg cycle time" ct)
              in
              if List.mem_assoc ct !regs then
                failf "line %d: duplicate reg record at %sns" lineno (render_float ct);
              let [@warning "-8"] [ area; leak; read; write ] =
                parse_kvs ~line:lineno
                  ~keys:
                    [
                      "area_um2_per_bit"; "leak_mw_per_bit"; "read_pj_per_bit";
                      "write_pj_per_bit";
                    ]
                  fields
              in
              regs :=
                ( ct,
                  {
                    r_area_um2_per_bit =
                      parse_float ~line:lineno ~what:"area_um2_per_bit" area;
                    r_leak_mw_per_bit =
                      parse_float ~line:lineno ~what:"leak_mw_per_bit" leak;
                    r_read_pj_per_bit =
                      parse_float ~line:lineno ~what:"read_pj_per_bit" read;
                    r_write_pj_per_bit =
                      parse_float ~line:lineno ~what:"write_pj_per_bit" write;
                  } )
                :: !regs
          | [ "end"; n ] -> (
              match int_of_string_opt n with
              | Some v -> finished := Some (lineno, v)
              | None -> failf "line %d: end: %S is not an integer" lineno n)
          | _ -> failf "line %d: unrecognized record %S" lineno line)
      lines;
    if not !header_seen then failf "empty file: missing salam-hwdb header";
    let name = match !name with Some n -> n | None -> failf "missing name declaration" in
    let node = match !node with Some n -> n | None -> failf "missing node declaration" in
    let cts =
      match !cycle_times with
      | Some c -> c
      | None -> failf "missing cycle_times declaration"
    in
    let records = List.length !fus + List.length !regs in
    (match !finished with
    | None -> failf "truncated database: missing end record"
    | Some (line, n) ->
        if n <> records then
          failf "line %d: end declares %d record(s) but %d parsed (truncated or edited?)"
            line n records);
    (* coverage: every declared cycle time needs a reg record and one
       record per FU class — an interpolation-free lookup has no way to
       fill holes *)
    List.iter
      (fun ct ->
        if not (List.mem_assoc ct !regs) then
          failf "no reg record at %sns" (render_float ct);
        List.iter
          (fun cls ->
            if not (List.mem_assoc (cls, ct) !fus) then
              failf "no record for %s at %sns" (Fu.to_string cls) (render_float ct))
          Fu.all)
      cts;
    Ok
      {
        db_name = name;
        db_node_nm = node;
        db_cycle_times = cts;
        db_fus = List.rev !fus;
        db_regs = List.rev !regs;
      }
  with Bad msg -> Error msg

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> (
      match parse text with
      | Ok db -> Ok db
      | Error e -> Error (Printf.sprintf "%s: %s" path e))
  | exception Sys_error e -> Error e

(* --- interpolation-free lookup ------------------------------------------ *)

let db_profile t ~cycle_time_ns =
  if not (List.mem cycle_time_ns t.db_cycle_times) then
    Error
      (Printf.sprintf "database %s has no %sns characterization (available: %s)" t.db_name
         (render_float cycle_time_ns)
         (String.concat ", " (List.map (fun c -> render_float c ^ "ns") t.db_cycle_times)))
  else
    let r = List.assoc cycle_time_ns t.db_regs in
    Ok
      {
        Profile.profile_name =
          Printf.sprintf "%s@%sns" t.db_name (render_float cycle_time_ns);
        node_nm = t.db_node_nm;
        cycle_time_ns;
        specs =
          List.fold_left
            (fun m ((cls, ct), s) -> if ct = cycle_time_ns then Fu.Map.add cls s m else m)
            Fu.Map.empty t.db_fus;
        reg_area_um2_per_bit = r.r_area_um2_per_bit;
        reg_leak_mw_per_bit = r.r_leak_mw_per_bit;
        reg_read_pj_per_bit = r.r_read_pj_per_bit;
        reg_write_pj_per_bit = r.r_write_pj_per_bit;
      }

(* --- the seed 40 nm database -------------------------------------------- *)

(* The 2 ns row (the default 500 MHz clock) IS [Profile.default_40nm],
   copied verbatim — loading the shipped table at the default operating
   point is bit-identical to the compiled-in constants by construction.
   The other cycle times derive deterministically from it: latencies
   rescale by the frequency ratio exactly as [Profile.scale_latencies]
   does, and area/leakage/energy follow the usual synthesis trade —
   faster cells are bigger and leakier, relaxed timing lets the tools
   shrink the netlist. *)
let seed_cycle_times = [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 10.0 ]

let derived_fu_spec ~cycle_time_ns (s : Profile.fu_spec) =
  if cycle_time_ns = 2.0 then s
  else
    let speed = 2.0 /. cycle_time_ns in
    let geometry = Float.max 0.72 (1.0 +. (0.35 *. (speed -. 1.0))) in
    let energy = Float.max 0.88 (1.0 +. (0.15 *. (speed -. 1.0))) in
    {
      Profile.latency =
        max 1 (int_of_float (ceil (float_of_int s.Profile.latency *. speed)));
      pipelined = s.Profile.pipelined;
      area_um2 = s.Profile.area_um2 *. geometry;
      leakage_mw = s.Profile.leakage_mw *. geometry;
      dynamic_pj = s.Profile.dynamic_pj *. energy;
    }

let derived_reg_spec ~cycle_time_ns r =
  if cycle_time_ns = 2.0 then r
  else
    let speed = 2.0 /. cycle_time_ns in
    let geometry = Float.max 0.72 (1.0 +. (0.35 *. (speed -. 1.0))) in
    let energy = Float.max 0.88 (1.0 +. (0.15 *. (speed -. 1.0))) in
    {
      r_area_um2_per_bit = r.r_area_um2_per_bit *. geometry;
      r_leak_mw_per_bit = r.r_leak_mw_per_bit *. geometry;
      r_read_pj_per_bit = r.r_read_pj_per_bit *. energy;
      r_write_pj_per_bit = r.r_write_pj_per_bit *. energy;
    }

let builtin =
  let base = Profile.default_40nm in
  let base_reg =
    {
      r_area_um2_per_bit = base.Profile.reg_area_um2_per_bit;
      r_leak_mw_per_bit = base.Profile.reg_leak_mw_per_bit;
      r_read_pj_per_bit = base.Profile.reg_read_pj_per_bit;
      r_write_pj_per_bit = base.Profile.reg_write_pj_per_bit;
    }
  in
  {
    db_name = "salam-40nm";
    db_node_nm = 40;
    db_cycle_times = seed_cycle_times;
    db_fus =
      List.concat_map
        (fun cls ->
          let s = Profile.spec base cls in
          List.map
            (fun ct -> ((cls, ct), derived_fu_spec ~cycle_time_ns:ct s))
            seed_cycle_times)
        Fu.all;
    db_regs =
      List.map (fun ct -> (ct, derived_reg_spec ~cycle_time_ns:ct base_reg)) seed_cycle_times;
  }

let builtin_hash = hash builtin

(* --- registry ------------------------------------------------------------ *)

(* Process-wide table of loaded databases keyed by content hash. A design
   point names its database by hash (the [hw_db] field); elaborating the
   point's config resolves through here, so a point measured under one
   table can never be silently served constants from another. Writes
   happen at CLI/daemon startup; reads are lock-protected too since
   served workers resolve concurrently. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 8
let registry_lock = Mutex.create ()

let register db =
  let h = hash db in
  Mutex.lock registry_lock;
  if not (Hashtbl.mem registry h) then Hashtbl.add registry h db;
  Mutex.unlock registry_lock;
  h

let () = ignore (register builtin)

let find_db h =
  Mutex.lock registry_lock;
  let db = Hashtbl.find_opt registry h in
  Mutex.unlock registry_lock;
  db

let registered () =
  Mutex.lock registry_lock;
  let dbs = Hashtbl.fold (fun h db acc -> (h, db) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort compare dbs

(* Full identity resolution: database by hash, node checked, cycle time
   looked up. This is what [Point.to_config] goes through. *)
let resolve ~hw_db ~node ~cycle_time_ns =
  match find_db hw_db with
  | None ->
      Error
        (Printf.sprintf
           "unknown hardware database %s (not loaded in this process; pass --hw-db)" hw_db)
  | Some db ->
      if db.db_node_nm <> node then
        Error
          (Printf.sprintf "database %s is characterized at %d nm, not %d nm" db.db_name
             db.db_node_nm node)
      else db_profile db ~cycle_time_ns

(* Convenience lookup by (node, cycle time) across every registered
   database, deterministic by (name, hash) order. *)
let profile ~node ~cycle_time_ns =
  let candidates =
    List.filter (fun (_, db) -> db.db_node_nm = node) (registered ())
    |> List.sort (fun (ha, a) (hb, b) -> compare (a.db_name, ha) (b.db_name, hb))
  in
  match candidates with
  | [] -> Error (Printf.sprintf "no registered hardware database for %d nm" node)
  | dbs -> (
      let rec try_dbs = function
        | [] ->
            Error
              (Printf.sprintf "no registered %d nm database has a %sns characterization"
                 node (render_float cycle_time_ns))
        | (_, db) :: rest -> (
            match db_profile db ~cycle_time_ns with Ok p -> Ok p | Error _ -> try_dbs rest)
      in
      try_dbs dbs)
