(* Design-space-exploration experiments: Fig 4 (power breakdown), Fig 13
   (GEMM Pareto), Fig 14 (stall analysis vs ports), Fig 15 (co-design
   sweeps) and the ablation of the engine's design choices.

   Figs 13–15 are generated through `salam_dse`: each figure declares
   its space and the subsystem enumerates, batches and measures it. The
   three figures share one in-memory result store, so design points
   that appear in more than one figure (e.g. the fu=1:1 port sweep) are
   simulated exactly once per bench process. *)

open Bench_util
module Engine = Salam_engine.Engine
module Fu = Salam_hw.Fu
module Dse = Salam_dse.Explore
module Space = Salam_dse.Space
module Point = Salam_dse.Point
module Store = Salam_dse.Store
module M = Salam_dse.Measurement

(* Fig 4: the seven power components, normalised per benchmark. *)
let fig4 () =
  section "FIG 4 — Total power breakdown with private SPM (% of total)";
  Printf.printf "%-24s %7s %7s %7s %7s %7s %7s %7s %9s\n" "benchmark" "dynFU" "dynREG"
    "dynSPMr" "dynSPMw" "statFU" "statREG" "statSPM" "total mW";
  let suite = Salam_workloads.Suite.standard () in
  let results =
    Salam.simulate_batch (List.map (fun w -> (Salam.Config.default, w)) suite)
  in
  List.iter2
    (fun w r ->
      let p = r.Salam.power in
      let total = Salam.total_mw p in
      let f x = pct (x /. total) in
      Printf.printf "%-24s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %9.2f\n"
        (short_name w) (f p.Salam.dynamic_fu_mw) (f p.Salam.dynamic_reg_mw)
        (f p.Salam.dynamic_spm_read_mw) (f p.Salam.dynamic_spm_write_mw)
        (f p.Salam.static_fu_mw) (f p.Salam.static_reg_mw) (f p.Salam.static_spm_mw) total)
    suite results;
  print_newline ()

let gemm_dse_workload () = Salam_workloads.Gemm.workload ~n:16 ~unroll:16 ~junroll:8 ()

(* the Fig 13–15 vehicle: 16x16 GEMM, k-loop fully unrolled, j-loop 8x *)
let gemm_target = Dse.gemm_target ~n:16 ()

let dse_base = { Point.default with Point.unroll = 16; junroll = 8 }

(* one store per bench process: points shared between figures hit *)
let shared_store = lazy (Store.in_memory ())

let explore spaces =
  Dse.run ~store:(Lazy.force shared_store) ~target:gemm_target ~strategy:Dse.Exhaustive
    spaces

let port_sweep = [ 64; 32; 16; 8; 4; 2 ]

(* the whole port sweep is one declared axis; salam_dse batches it *)
let sweep_ports ?(fu_limit = 0) () =
  let report =
    explore
      [
        Space.create ~base:dse_base ~derive:Space.spm_balanced
          [ Space.Read_ports port_sweep; Space.Fu_limit [ fu_limit ] ];
      ]
  in
  List.map (fun (m : M.t) -> (m.M.point.Point.read_ports, m)) report.Dse.measurements

(* Fig 13: power/performance Pareto across FU counts and bandwidth. *)
let fig13 () =
  section "FIG 13 — GEMM design-space Pareto (execution time vs power)";
  Printf.printf "%-34s %12s %14s %14s\n" "configuration" "time (us)" "datapath mW"
    "datapath+mem mW";
  let report =
    explore
      [
        (* the SPM cloud: FU budget x bandwidth *)
        Space.create ~base:dse_base ~derive:Space.spm_balanced
          [ Space.Fu_limit [ 2; 4; 8; 0 ]; Space.Read_ports [ 1; 2; 4; 8; 16 ] ];
        (* the cache cloud: capacity sweep at the default interface *)
        Space.create ~base:dse_base
          [ Space.Memory [ Point.Cache ]; Space.Cache_bytes [ 512; 2048; 8192 ] ];
      ]
  in
  List.iter
    (fun (m : M.t) ->
      let p = m.M.point in
      let label =
        match p.Point.memory with
        | Point.Cache -> Printf.sprintf "cache %dB" p.Point.cache_bytes
        | _ ->
            Printf.sprintf "SPM, %s FADD/FMUL, %d rd ports"
              (if p.Point.fu_limit = 0 then "1:1" else string_of_int p.Point.fu_limit)
              p.Point.read_ports
      in
      Printf.printf "%-34s %12.2f %14.2f %14.2f\n" label (m.M.seconds *. 1e6)
        m.M.datapath_mw m.M.total_mw)
    report.Dse.measurements;
  Printf.printf "\nPareto front (time/power/area): %d of %d points\n"
    (List.length report.Dse.front)
    (List.length report.Dse.measurements);
  print_newline ()

(* Fig 14: stall behaviour across read/write port counts. *)
let fig14 () =
  section "FIG 14(a) — Stalled vs new-execution cycles per R/W port count (GEMM)";
  Printf.printf "%-10s %12s %12s %12s\n" "ports" "stall %" "issue %" "cycles";
  let runs = sweep_ports () in
  List.iter
    (fun (ports, (m : M.t)) ->
      let active = float_of_int m.M.active_cycles in
      Printf.printf "%-10d %11.1f%% %11.1f%% %12Ld\n" ports
        (pct (float_of_int m.M.stall_cycles /. active))
        (pct (float_of_int m.M.issue_cycles /. active))
        m.M.cycles)
    runs;
  section "FIG 14(b) — Stall-cause breakdown (% of stalled cycles)";
  Printf.printf "%-10s %18s %24s %10s\n" "ports" "load+compute" "load+store+compute" "other";
  List.iter
    (fun (ports, (m : M.t)) ->
      let stalls = float_of_int (max 1 m.M.stall_cycles) in
      Printf.printf "%-10d %17.1f%% %23.1f%% %9.1f%%\n" ports
        (pct (float_of_int m.M.stall_load_compute /. stalls))
        (pct (float_of_int m.M.stall_load_store_compute /. stalls))
        (pct (float_of_int (m.M.stall_other + m.M.stall_load_only) /. stalls)))
    runs;
  print_newline ()

(* Fig 15: co-design with constrained FADD units. *)
let fig15 () =
  let fu_limit = 8 in
  section
    (Printf.sprintf
       "FIG 15 — Co-design sweeps (GEMM, %d FADD/FMUL units held constant)" fu_limit);
  let runs = sweep_ports ~fu_limit () in
  Printf.printf "(a) %-6s %10s %10s\n" "ports" "stall %" "issue %";
  List.iter
    (fun (ports, (m : M.t)) ->
      let active = float_of_int m.M.active_cycles in
      Printf.printf "    %-6d %9.1f%% %9.1f%%\n" ports
        (pct (float_of_int m.M.stall_cycles /. active))
        (pct (float_of_int m.M.issue_cycles /. active)))
    runs;
  Printf.printf "(b) %-6s %12s %12s %12s %16s\n" "ports" "load&store %" "load only %"
    "store only %" "FMUL occupancy";
  List.iter
    (fun (ports, (m : M.t)) ->
      let active = float_of_int m.M.active_cycles in
      let both = float_of_int m.M.cycles_with_load_and_store in
      let load_only = float_of_int (m.M.cycles_with_load - m.M.cycles_with_load_and_store) in
      let store_only =
        float_of_int (m.M.cycles_with_store - m.M.cycles_with_load_and_store)
      in
      Printf.printf "    %-6d %11.1f%% %11.1f%% %11.1f%% %15.1f%%\n" ports
        (pct (both /. active)) (pct (load_only /. active)) (pct (store_only /. active))
        (pct m.M.fmul_occupancy))
    runs;
  Printf.printf "(c) %-6s %10s %10s %10s %12s\n" "ports" "load %" "store %" "fp %" "cycles";
  List.iter
    (fun (ports, (m : M.t)) ->
      let scheduled =
        float_of_int (max 1 (m.M.issued_fp + m.M.issued_int + m.M.issued_mem))
      in
      Printf.printf "    %-6d %9.1f%% %9.1f%% %9.1f%% %12Ld\n" ports
        (pct (float_of_int m.M.loads_issued /. scheduled))
        (pct (float_of_int m.M.stores_issued /. scheduled))
        (pct (float_of_int m.M.issued_fp /. scheduled))
        m.M.cycles)
    runs;
  Printf.printf "(d) %-6s %10s %10s %10s %16s\n" "ports" "load %" "store %" "fp %"
    "datapath mW";
  List.iter
    (fun (ports, (m : M.t)) ->
      let scheduled =
        float_of_int (max 1 (m.M.issued_fp + m.M.issued_int + m.M.issued_mem))
      in
      Printf.printf "    %-6d %9.1f%% %9.1f%% %9.1f%% %16.2f\n" ports
        (pct (float_of_int m.M.loads_issued /. scheduled))
        (pct (float_of_int m.M.stores_issued /. scheduled))
        (pct (float_of_int m.M.issued_fp /. scheduled))
        m.M.datapath_mw)
    runs;
  print_newline ()

(* Cycle-time sweep: the gemm16 DSE point measured under every row of
   the shipped characterization database. Slower cycle times buy lower
   operator latencies (in cycles), so total cycle counts must be
   monotone non-increasing in cycle time — a violated row means the
   derived tables and the engine disagree, and the sweep exits 1.
   Results land in BENCH_engine.json as ct/gemm16_<ct>ns = cycles. *)
let ct_sweep () =
  let cts = Salam_config.cycle_times Salam_config.builtin in
  section
    (Printf.sprintf "CT — gemm16 across the %s cycle-time rows (%s ns)"
       (Salam_config.name Salam_config.builtin)
       (String.concat ", " (List.map (Printf.sprintf "%g") cts)));
  let report =
    explore
      [ Space.create ~base:dse_base ~derive:Space.spm_balanced
          [ Space.Cycle_time_ns cts ] ]
  in
  let runs =
    List.sort
      (fun (a : M.t) (b : M.t) ->
        compare a.M.point.Point.cycle_time_ns b.M.point.Point.cycle_time_ns)
      report.Dse.measurements
  in
  Printf.printf "%-10s %10s %12s %12s %14s\n" "ct (ns)" "clock MHz" "cycles"
    "time (us)" "datapath mW";
  List.iter
    (fun (m : M.t) ->
      let p = m.M.point in
      Printf.printf "%-10g %10.1f %12Ld %12.2f %14.2f\n" p.Point.cycle_time_ns
        p.Point.clock_mhz m.M.cycles (m.M.seconds *. 1e6) m.M.datapath_mw)
    runs;
  (* sanity gate: cycles non-increasing as the clock relaxes *)
  ignore
    (List.fold_left
       (fun prev (m : M.t) ->
         if m.M.cycles > prev then begin
           Printf.eprintf
             "cycle count increased at ct=%gns (%Ld > %Ld): derived latencies \
              disagree with the engine\n"
             m.M.point.Point.cycle_time_ns m.M.cycles prev;
           exit 1
         end;
         m.M.cycles)
       Int64.max_int runs);
  update_bench_json
    (List.map
       (fun (m : M.t) ->
         ( Printf.sprintf "ct/gemm16_%gns" m.M.point.Point.cycle_time_ns,
           Int64.to_float m.M.cycles ))
       runs);
  print_newline ()

(* The cold-sweep path of the DSE subsystem, for the micro bench: a tiny
   GEMM space enumerated, simulated (no store) and Pareto-extracted. *)
let dse_front_cold () =
  let base = { Point.default with Point.unroll = 1; junroll = 1 } in
  let report =
    Dse.run ~domains:1
      ~target:(Dse.gemm_target ~n:8 ())
      ~strategy:Dse.Exhaustive
      [
        Space.create ~base ~derive:Space.spm_balanced
          [ Space.Read_ports [ 2; 4 ]; Space.Fu_limit [ 0 ] ];
      ]
  in
  report.Dse.front

(* Ablation of the engine's design choices (DESIGN.md): the hazard rules
   and memory disambiguation that realise the paper's scheduling
   semantics. *)
let ablation () =
  section "ABLATION — engine design choices (cycles)";
  Printf.printf "%-24s %12s %12s %12s %12s\n" "benchmark" "full" "no WAR" "no WAW"
    "no disambig";
  let workloads =
    [
      Salam_workloads.Gemm.workload ~n:16 ~unroll:2 ();
      Salam_workloads.Md_knn.workload ~atoms:64 ~neighbours:16 ();
      Salam_workloads.Stencil2d.workload ~rows:32 ~cols:32 ();
    ]
  in
  let base = Engine.default_config in
  let variants =
    [
      base;
      { base with Engine.enforce_war = false };
      { base with Engine.enforce_waw = false };
      { base with Engine.disambiguate_memory = false };
    ]
  in
  let jobs =
    List.concat_map
      (fun w ->
        List.map
          (fun e -> ({ Salam.Config.default with Salam.Config.engine = e }, w))
          variants)
      workloads
  in
  let cycles = List.map (fun r -> r.Salam.cycles) (Salam.simulate_batch jobs) in
  List.iteri
    (fun i w ->
      match List.filteri (fun j _ -> j / 4 = i) cycles with
      | [ full; no_war; no_waw; no_dis ] ->
          Printf.printf "%-24s %12Ld %12Ld %12Ld %12Ld\n" (short_name w) full no_war
            no_waw no_dis
      | _ -> assert false)
    workloads;
  Printf.printf
    "(the WAR rule is the paper's Sec III-B reader check; disabling rules is diagnostic only)\n%!"
