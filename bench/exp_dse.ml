(* Design-space-exploration experiments: Fig 4 (power breakdown), Fig 13
   (GEMM Pareto), Fig 14 (stall analysis vs ports), Fig 15 (co-design
   sweeps) and the ablation of the engine's design choices. *)

open Bench_util
module Engine = Salam_engine.Engine
module Fu = Salam_hw.Fu

(* Fig 4: the seven power components, normalised per benchmark. *)
let fig4 () =
  section "FIG 4 — Total power breakdown with private SPM (% of total)";
  Printf.printf "%-24s %7s %7s %7s %7s %7s %7s %7s %9s\n" "benchmark" "dynFU" "dynREG"
    "dynSPMr" "dynSPMw" "statFU" "statREG" "statSPM" "total mW";
  let suite = Salam_workloads.Suite.standard () in
  let results =
    Salam.simulate_batch (List.map (fun w -> (Salam.Config.default, w)) suite)
  in
  List.iter2
    (fun w r ->
      let p = r.Salam.power in
      let total = Salam.total_mw p in
      let f x = pct (x /. total) in
      Printf.printf "%-24s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% %9.2f\n"
        (short_name w) (f p.Salam.dynamic_fu_mw) (f p.Salam.dynamic_reg_mw)
        (f p.Salam.dynamic_spm_read_mw) (f p.Salam.dynamic_spm_write_mw)
        (f p.Salam.static_fu_mw) (f p.Salam.static_reg_mw) (f p.Salam.static_spm_mw) total)
    suite results;
  print_newline ()

let gemm_dse_workload () = Salam_workloads.Gemm.workload ~n:16 ~unroll:16 ~junroll:8 ()

let gemm_job ?(fu_limit = 0) ?(ports = 2) ?(memory = `Spm) () =
  let w = gemm_dse_workload () in
  let fu_limits =
    if fu_limit > 0 then [ (Fu.Fp_add_dp, fu_limit); (Fu.Fp_mul_dp, fu_limit) ] else []
  in
  let memory =
    match memory with
    | `Spm -> Salam.Config.Spm { read_ports = ports; write_ports = max 1 (ports / 2); banks = 2 * ports; latency = 1 }
    | `Cache size -> Salam.Config.Cache { size; line_bytes = 64; ways = 4; hit_latency = 2 }
  in
  let config =
    {
      Salam.Config.default with
      Salam.Config.memory;
      fu_limits;
      engine = { Engine.default_config with Engine.fu_limits };
    }
  in
  (config, w)

let simulate_gemm ?fu_limit ?ports ?memory () =
  let config, w = gemm_job ?fu_limit ?ports ?memory () in
  Salam.simulate ~config w

let port_sweep = [ 64; 32; 16; 8; 4; 2 ]

(* run the whole port sweep as one domain-parallel batch *)
let sweep_ports ?fu_limit () =
  List.combine port_sweep
    (Salam.simulate_batch (List.map (fun ports -> gemm_job ?fu_limit ~ports ()) port_sweep))

(* Fig 13: power/performance Pareto across FU counts and bandwidth. *)
let fig13 () =
  section "FIG 13 — GEMM design-space Pareto (execution time vs power)";
  Printf.printf "%-34s %12s %14s %14s\n" "configuration" "time (us)" "datapath mW"
    "datapath+mem mW";
  let spm_points =
    List.concat_map
      (fun fu -> List.map (fun ports -> (fu, ports)) [ 1; 2; 4; 8; 16 ])
      [ 2; 4; 8; 0 ]
  in
  let cache_sizes = [ 512; 2048; 8192 ] in
  (* all 23 design points go out as one batch *)
  let labels =
    List.map
      (fun (fu_limit, ports) ->
        Printf.sprintf "SPM, %s FADD/FMUL, %d rd ports"
          (if fu_limit = 0 then "1:1" else string_of_int fu_limit)
          ports)
      spm_points
    @ List.map (fun size -> Printf.sprintf "cache %dB" size) cache_sizes
  in
  let jobs =
    List.map (fun (fu_limit, ports) -> gemm_job ~fu_limit ~ports ()) spm_points
    @ List.map (fun size -> gemm_job ~memory:(`Cache size) ()) cache_sizes
  in
  List.iter2
    (fun label r ->
      let p = r.Salam.power in
      let datapath_mw =
        p.Salam.dynamic_fu_mw +. p.Salam.dynamic_reg_mw +. p.Salam.static_fu_mw
        +. p.Salam.static_reg_mw
      in
      Printf.printf "%-34s %12.2f %14.2f %14.2f\n" label (r.Salam.seconds *. 1e6)
        datapath_mw (Salam.total_mw p))
    labels (Salam.simulate_batch jobs);
  print_newline ()

(* Fig 14: stall behaviour across read/write port counts. *)
let fig14 () =
  section "FIG 14(a) — Stalled vs new-execution cycles per R/W port count (GEMM)";
  Printf.printf "%-10s %12s %12s %12s\n" "ports" "stall %" "issue %" "cycles";
  let runs = sweep_ports () in
  List.iter
    (fun (ports, r) ->
      let s = r.Salam.stats in
      let active = float_of_int s.Engine.active_cycles in
      Printf.printf "%-10d %11.1f%% %11.1f%% %12Ld\n" ports
        (pct (float_of_int s.Engine.stall_cycles /. active))
        (pct (float_of_int s.Engine.issue_cycles /. active))
        r.Salam.cycles)
    runs;
  section "FIG 14(b) — Stall-cause breakdown (% of stalled cycles)";
  Printf.printf "%-10s %18s %24s %10s\n" "ports" "load+compute" "load+store+compute" "other";
  List.iter
    (fun (ports, r) ->
      let s = r.Salam.stats in
      let stalls = float_of_int (max 1 s.Engine.stall_cycles) in
      Printf.printf "%-10d %17.1f%% %23.1f%% %9.1f%%\n" ports
        (pct (float_of_int s.Engine.stall_load_compute /. stalls))
        (pct (float_of_int s.Engine.stall_load_store_compute /. stalls))
        (pct
           (float_of_int (s.Engine.stall_other + s.Engine.stall_load_only) /. stalls)))
    runs;
  print_newline ()

(* Fig 15: co-design with constrained FADD units. *)
let fig15 () =
  let fu_limit = 8 in
  section
    (Printf.sprintf
       "FIG 15 — Co-design sweeps (GEMM, %d FADD/FMUL units held constant)" fu_limit);
  let runs = sweep_ports ~fu_limit () in
  Printf.printf "(a) %-6s %10s %10s\n" "ports" "stall %" "issue %";
  List.iter
    (fun (ports, r) ->
      let s = r.Salam.stats in
      let active = float_of_int s.Engine.active_cycles in
      Printf.printf "    %-6d %9.1f%% %9.1f%%\n" ports
        (pct (float_of_int s.Engine.stall_cycles /. active))
        (pct (float_of_int s.Engine.issue_cycles /. active)))
    runs;
  Printf.printf "(b) %-6s %12s %12s %12s %16s\n" "ports" "load&store %" "load only %"
    "store only %" "FMUL occupancy";
  List.iter
    (fun (ports, r) ->
      let s = r.Salam.stats in
      let active = float_of_int s.Engine.active_cycles in
      let both = float_of_int s.Engine.cycles_with_load_and_store in
      let load_only = float_of_int (s.Engine.cycles_with_load - s.Engine.cycles_with_load_and_store) in
      let store_only =
        float_of_int (s.Engine.cycles_with_store - s.Engine.cycles_with_load_and_store)
      in
      Printf.printf "    %-6d %11.1f%% %11.1f%% %11.1f%% %15.1f%%\n" ports
        (pct (both /. active)) (pct (load_only /. active)) (pct (store_only /. active))
        (pct (Salam.fu_occupancy r Fu.Fp_mul_dp ~allocated:fu_limit))
    )
    runs;
  Printf.printf "(c) %-6s %10s %10s %10s %12s\n" "ports" "load %" "store %" "fp %" "cycles";
  List.iter
    (fun (ports, r) ->
      let s = r.Salam.stats in
      let scheduled =
        float_of_int (max 1 (s.Engine.issued_fp + s.Engine.issued_int + s.Engine.issued_mem))
      in
      let loads = float_of_int s.Engine.loads_issued in
      let stores = float_of_int s.Engine.stores_issued in
      Printf.printf "    %-6d %9.1f%% %9.1f%% %9.1f%% %12Ld\n" ports
        (pct (loads /. scheduled)) (pct (stores /. scheduled))
        (pct (float_of_int s.Engine.issued_fp /. scheduled))
        r.Salam.cycles)
    runs;
  Printf.printf "(d) %-6s %10s %10s %10s %16s\n" "ports" "load %" "store %" "fp %"
    "datapath mW";
  List.iter
    (fun (ports, r) ->
      let s = r.Salam.stats in
      let scheduled =
        float_of_int (max 1 (s.Engine.issued_fp + s.Engine.issued_int + s.Engine.issued_mem))
      in
      let p = r.Salam.power in
      Printf.printf "    %-6d %9.1f%% %9.1f%% %9.1f%% %16.2f\n" ports
        (pct (float_of_int s.Engine.loads_issued /. scheduled))
        (pct (float_of_int s.Engine.stores_issued /. scheduled))
        (pct (float_of_int s.Engine.issued_fp /. scheduled))
        (p.Salam.dynamic_fu_mw +. p.Salam.dynamic_reg_mw +. p.Salam.static_fu_mw
        +. p.Salam.static_reg_mw))
    runs;
  print_newline ()

(* Ablation of the engine's design choices (DESIGN.md): the hazard rules
   and memory disambiguation that realise the paper's scheduling
   semantics. *)
let ablation () =
  section "ABLATION — engine design choices (cycles)";
  Printf.printf "%-24s %12s %12s %12s %12s\n" "benchmark" "full" "no WAR" "no WAW"
    "no disambig";
  let workloads =
    [
      Salam_workloads.Gemm.workload ~n:16 ~unroll:2 ();
      Salam_workloads.Md_knn.workload ~atoms:64 ~neighbours:16 ();
      Salam_workloads.Stencil2d.workload ~rows:32 ~cols:32 ();
    ]
  in
  let base = Engine.default_config in
  let variants =
    [
      base;
      { base with Engine.enforce_war = false };
      { base with Engine.enforce_waw = false };
      { base with Engine.disambiguate_memory = false };
    ]
  in
  let jobs =
    List.concat_map
      (fun w ->
        List.map
          (fun e -> ({ Salam.Config.default with Salam.Config.engine = e }, w))
          variants)
      workloads
  in
  let cycles = List.map (fun r -> r.Salam.cycles) (Salam.simulate_batch jobs) in
  List.iteri
    (fun i w ->
      match List.filteri (fun j _ -> j / 4 = i) cycles with
      | [ full; no_war; no_waw; no_dis ] ->
          Printf.printf "%-24s %12Ld %12Ld %12Ld %12Ld\n" (short_name w) full no_war
            no_waw no_dis
      | _ -> assert false)
    workloads;
  Printf.printf
    "(the WAR rule is the paper's Sec III-B reader check; disabling rules is diagnostic only)\n%!"
