(* Shared plumbing for the benchmark harness. *)

open Salam_ir
module W = Salam_workloads.Workload

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n%!"

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let pct x = x *. 100.0

(* signed percentage error of [got] against [reference] *)
let err_pct ~got ~reference =
  if reference = 0.0 then 0.0 else (got -. reference) /. reference *. 100.0

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

(* initialise a workload's buffers in a fresh flat memory (for the
   trace-based baseline and the reference models) *)
let functional_setup (w : W.t) =
  let mem = Memory.create ~size:(1 lsl 23) in
  let bases = W.alloc_buffers w mem in
  w.W.init (Salam_sim.Rng.create 42L) mem bases;
  (mem, bases)

let block_counts_of (w : W.t) =
  let mem, bases = functional_setup w in
  Salam_reference.Hls_model.block_counts mem (W.modul w)
    ~entry:w.W.kernel.Salam_frontend.Lang.kname ~args:(W.args w ~bases)

let trace_of (w : W.t) =
  let mem, bases = functional_setup w in
  let file = Filename.temp_file ("salam_" ^ w.W.name) ".trace" in
  let events =
    Salam_aladdin.Trace.generate mem (W.modul w)
      ~entry:w.W.kernel.Salam_frontend.Lang.kname ~args:(W.args w ~bases) ~file
  in
  (file, events)

(* Machine-readable mirror of benchmark results, for tracking across
   commits. Several experiments write here (micro throughput, the
   cycle-time sweep), so writes merge: entries already in the file and
   not being replaced survive a partial rerun. *)
let bench_json_path = "BENCH_engine.json"

let read_bench_json () =
  if not (Sys.file_exists bench_json_path) then []
  else begin
    let ic = open_in bench_json_path in
    let entries = ref [] in
    (try
       while true do
         (* entry lines look like:   "name": 12345,  *)
         let line = input_line ic in
         match (String.index_opt line '"', String.rindex_opt line ':') with
         | Some q1, Some colon when q1 < colon -> (
             match String.index_from_opt line (q1 + 1) '"' with
             | Some q2 when q2 < colon -> (
                 let name = String.sub line (q1 + 1) (q2 - q1 - 1) in
                 let v =
                   String.trim
                     (String.sub line (colon + 1) (String.length line - colon - 1))
                 in
                 let v =
                   if String.length v > 0 && v.[String.length v - 1] = ',' then
                     String.sub v 0 (String.length v - 1)
                   else v
                 in
                 match float_of_string_opt v with
                 | Some f -> entries := (name, f) :: !entries
                 | None -> ())
             | _ -> ())
         | _ -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !entries
  end

let update_bench_json entries =
  let keep =
    List.filter (fun (k, _) -> not (List.mem_assoc k entries)) (read_bench_json ())
  in
  let all =
    List.sort (fun (a, _) (b, _) -> String.compare a b) (keep @ entries)
  in
  let oc = open_out bench_json_path in
  output_string oc "{\n";
  List.iteri
    (fun i (name, v) ->
      Printf.fprintf oc "  %S: %.0f%s\n" name v
        (if i = List.length all - 1 then "" else ","))
    all;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "[%d result(s) merged into %s]\n" (List.length entries)
    bench_json_path

let short_name (w : W.t) =
  (* strip size suffixes for display: "gemm_ncubed_n16_u2" -> "gemm_ncubed" *)
  match String.index_opt w.W.name '_' with
  | None -> w.W.name
  | Some _ ->
      let parts = String.split_on_char '_' w.W.name in
      let keep =
        List.filter
          (fun p ->
            String.length p = 0
            || not (List.mem p.[0] [ 'n'; 'u'; 's'; 'd'; 'p' ] && String.length p > 1
                   && p.[1] >= '0' && p.[1] <= '9'))
          parts
      in
      String.concat "_" (List.filter (fun p -> p <> "") keep)
