(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Sec. IV), plus an ablation of the engine's design choices
   and Bechamel micro-benchmarks of the simulator itself.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig10 table4 ...   # a subset
   Experiment names: table1 table2 table3 table4 fig4 fig10 fig11 fig12
   fig13 fig14 fig15 fig16 ablation micro speedup ff par ct *)

(* Engine-mode-pinned configs. The bare engine_* micro entries pin the
   fully dynamic scheduler so their numbers stay comparable with the
   committed baseline; the *_compiled twins run the schedule-
   specialization replay. *)
let with_mode mode =
  {
    Salam.Config.default with
    Salam.Config.engine =
      { Salam_engine.Engine.default_config with Salam_engine.Engine.mode };
  }

let dynamic_config = with_mode Salam_engine.Engine.Dynamic

let compiled_config = with_mode Salam_engine.Engine.Compiled

(* Compiled-vs-dynamic speedup on the Fig 13 gemm16 DSE point, the
   workload that stresses the scheduler hardest. Interleaved min-of-N
   wall timing: alternating the two modes within one process cancels
   machine-load drift that two independent OLS fits cannot, so this —
   not the Bechamel twins — is what CI gates on. *)
let speedup () =
  Bench_util.section "SPEEDUP — compiled vs dynamic engine (gemm16)";
  let gemm16 = Exp_dse.gemm_dse_workload () in
  let time config w =
    let t0 = Unix.gettimeofday () in
    ignore (Salam.simulate ~config w);
    Unix.gettimeofday () -. t0
  in
  let minpair ~rounds w =
    (* warm both paths: kernel compilation is memoised, allocator settles *)
    ignore (time dynamic_config w);
    ignore (time compiled_config w);
    let dmin = ref infinity and cmin = ref infinity in
    for _ = 1 to rounds do
      dmin := min !dmin (time dynamic_config w);
      cmin := min !cmin (time compiled_config w)
    done;
    (!dmin, !cmin)
  in
  let dmin, cmin = minpair ~rounds:12 gemm16 in
  Printf.printf "engine_gemm16: dynamic %.1f ms, compiled %.1f ms, speedup %.2fx\n"
    (1000. *. dmin) (1000. *. cmin) (dmin /. cmin);
  (* regression guard: the profitability heuristic must keep Compiled
     mode from ever losing meaningfully to dynamic — on winners (gemm16)
     and on short branchy kernels (nw16) alike *)
  let violations = ref [] in
  List.iter
    (fun (name, w) ->
      let dmin, cmin = minpair ~rounds:12 w in
      let ratio = cmin /. dmin in
      Printf.printf "%s: compiled/dynamic ratio %.3f (guard <= 1.05)\n" name ratio;
      if ratio > 1.05 then violations := name :: !violations)
    [ ("engine_gemm16_guard", gemm16); ("engine_nw16_guard", Salam_workloads.Nw.workload ~len:16 ()) ];
  print_newline ();
  if !violations <> [] then begin
    Printf.eprintf "compiled mode slower than 1.05x dynamic on: %s\n"
      (String.concat ", " !violations);
    exit 1
  end

(* Fast-forward warm-start win on the same gemm16 point: an
   uninterrupted 3-invocation detailed run against interpreter warm-up
   to the roadmark after invocation 2 plus the one remaining detailed
   invocation. The two are bit-identical (snapshot oracle); this times
   the wall-clock side of the trade, interleaved min-of-N like the
   engine-mode gate above. *)
let ff_speedup () =
  Bench_util.section "FF — fast-forward warm-start vs cold detailed (gemm16)";
  let gemm16 = Exp_dse.gemm_dse_workload () in
  let config = dynamic_config in
  let invocations = 3 and roadmark = 2 in
  let cold () =
    let t0 = Unix.gettimeofday () in
    ignore (Salam.simulate ~config ~invocations gemm16);
    Unix.gettimeofday () -. t0
  in
  let warm () =
    let t0 = Unix.gettimeofday () in
    let from = Salam.warm_up ~config ~invocations:roadmark gemm16 in
    ignore (Salam.simulate ~config ~invocations ~from gemm16);
    Unix.gettimeofday () -. t0
  in
  ignore (cold ());
  ignore (warm ());
  let cmin = ref infinity and wmin = ref infinity in
  for _ = 1 to 8 do
    cmin := min !cmin (cold ());
    wmin := min !wmin (warm ())
  done;
  Printf.printf "ff_gemm16: cold %.1f ms, fast-forward %.1f ms, speedup %.2fx\n\n"
    (1000. *. !cmin) (1000. *. !wmin) (!cmin /. !wmin)

(* Parallel-in-point speedup on the three-accelerator streaming CNN
   pipeline — the multi-island system island execution targets. The
   parallel run is bit-identical to the sequential one (parallel oracle);
   this times the wall-clock side, interleaved min-of-N like the other
   gates. On a single-core machine the domain pool collapses to the
   coordinator and the ratio hovers around 1x; CI gates the multi-core
   number. *)
let par_speedup () =
  Bench_util.section "PAR — island-parallel vs sequential (cnn_pipeline streams)";
  let time ?island_domains () =
    let t0 = Unix.gettimeofday () in
    ignore (Salam_scenarios.Cnn_pipeline.run_streams ?island_domains ());
    Unix.gettimeofday () -. t0
  in
  ignore (time ());
  ignore (time ~island_domains:4 ());
  let smin = ref infinity and pmin = ref infinity in
  for _ = 1 to 8 do
    smin := min !smin (time ());
    pmin := min !pmin (time ~island_domains:4 ())
  done;
  Printf.printf "par_cnn_pipeline: sequential %.1f ms, 4 domains %.1f ms, speedup %.2fx\n\n"
    (1000. *. !smin) (1000. *. !pmin) (!smin /. !pmin)

let micro () =
  Bench_util.section "MICRO — simulator throughput (Bechamel)";
  let open Bechamel in
  let gemm = Salam_workloads.Gemm.workload ~n:8 () in
  let gemm16 = Exp_dse.gemm_dse_workload () in
  let nw = Salam_workloads.Nw.workload ~len:16 () in
  let dynamic = dynamic_config in
  let compiled = compiled_config in
  let tests =
    Test.make_grouped ~name:"salam"
      [
        Test.make ~name:"engine_gemm8"
          (Staged.stage (fun () -> ignore (Salam.simulate ~config:dynamic gemm)));
        (* the Fig 13 DSE point: a 16x16 GEMM unrolled 16x8, the largest
           single-block workload — stresses the reservation and wake-up
           structures hardest *)
        Test.make ~name:"engine_gemm16"
          (Staged.stage (fun () -> ignore (Salam.simulate ~config:dynamic gemm16)));
        Test.make ~name:"engine_gemm16_compiled"
          (Staged.stage (fun () -> ignore (Salam.simulate ~config:compiled gemm16)));
        (* fast-forward restore: the one remaining detailed invocation
           of a 3-invocation schedule, forked from a pre-taken
           roadmark-2 snapshot *)
        (let ff_snap = Salam.warm_up ~config:dynamic ~invocations:2 gemm16 in
         Test.make ~name:"engine_gemm16_ff"
           (Staged.stage (fun () ->
                ignore (Salam.simulate ~config:dynamic ~invocations:3 ~from:ff_snap gemm16))));
        Test.make ~name:"engine_nw16"
          (Staged.stage (fun () -> ignore (Salam.simulate ~config:dynamic nw)));
        Test.make ~name:"engine_nw16_compiled"
          (Staged.stage (fun () -> ignore (Salam.simulate ~config:compiled nw)));
        (* the three-accelerator streaming pipeline, sequential kernel:
           the baseline the island-parallel mode is gated against *)
        Test.make ~name:"engine_cnn_pipeline"
          (Staged.stage (fun () ->
               ignore (Salam_scenarios.Cnn_pipeline.run_streams ~h:16 ~w:16 ())));
        (* a whole cold DSE sweep: enumerate a tiny GEMM space, simulate
           it storeless and extract the Pareto front *)
        Test.make ~name:"dse_gemm_front"
          (Staged.stage (fun () -> ignore (Exp_dse.dse_front_cold ())));
        Test.make ~name:"interp_gemm8"
          (Staged.stage (fun () -> ignore (Salam_workloads.Workload.run_functional gemm)));
        Test.make ~name:"compile_gemm8"
          (Staged.stage (fun () ->
               ignore (Salam_frontend.Compile.kernel gemm.Salam_workloads.Workload.kernel)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "%-28s %16s\n" "benchmark" "ns/run";
  let entries = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          Printf.printf "%-28s %16.0f\n" name ns;
          entries := (name, ns) :: !entries
      | _ -> Printf.printf "%-28s %16s\n" name "n/a")
    results;
  Bench_util.update_bench_json
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !entries);
  print_newline ()

let experiments =
  [
    ("table1", Exp_motivation.table1);
    ("table2", Exp_motivation.table2);
    ("fig4", Exp_dse.fig4);
    ("fig10", Exp_validation.fig10);
    ("fig11", Exp_validation.fig11);
    ("fig12", Exp_validation.fig12);
    ("table3", Exp_validation.table3);
    ("table4", Exp_validation.table4);
    ("fig13", Exp_dse.fig13);
    ("fig14", Exp_dse.fig14);
    ("fig15", Exp_dse.fig15);
    ("fig16", Exp_multi.fig16);
    ("ablation", Exp_dse.ablation);
    ("ct", Exp_dse.ct_sweep);
    ("micro", micro);
    ("speedup", speedup);
    ("ff", ff_speedup);
    ("par", par_speedup);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: ([ _ ] as names) when names <> [ "all" ] -> names
    | _ :: (_ :: _ as names) when names <> [ "all" ] -> names
    | _ -> List.map fst experiments
  in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %s (available: %s)\n" name
            (String.concat " " (List.map fst experiments)))
    requested;
  Printf.printf "\n[bench completed in %.1fs]\n" (Unix.gettimeofday () -. t0)
