(* Fig 16: the three producer-consumer integration scenarios of the CNN
   layer, run at the paper's topologies. *)

open Bench_util
open Salam_scenarios

let fig16 () =
  section "FIG 16 — Multi-accelerator CNN scenarios (end-to-end)";
  (* the three scenarios build independent systems, so they can run on
     separate domains; order is preserved (private SPM is the baseline) *)
  let outcomes =
    Salam.parallel_map
      (fun run -> run ())
      [
        (fun () -> Cnn_pipeline.run_private_spm ());
        (fun () -> Cnn_pipeline.run_shared_spm ());
        (fun () -> Cnn_pipeline.run_streams ());
      ]
  in
  let baseline =
    match outcomes with o :: _ -> o.Cnn_pipeline.total_us | [] -> assert false
  in
  Printf.printf "%-22s %12s %10s %10s   %s\n" "scenario" "total (us)" "speedup" "correct"
    "per-stage busy cycles";
  List.iter
    (fun (o : Cnn_pipeline.outcome) ->
      Printf.printf "%-22s %12.2f %9.2fx %10b   " o.Cnn_pipeline.scenario
        o.Cnn_pipeline.total_us
        (baseline /. o.Cnn_pipeline.total_us)
        o.Cnn_pipeline.correct;
      List.iter (fun (n, c) -> Printf.printf "%s=%Ld " n c) o.Cnn_pipeline.stage_cycles;
      print_newline ())
    outcomes;
  Printf.printf "(paper: shared SPM 1.25x, stream buffers 2.08x over the private-SPM baseline)\n%!"
