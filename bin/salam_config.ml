(* CLI for the loadable hardware characterization database.

   Mirrors the real salam-config tool's verbs: validate a database file,
   list the functional units characterized at a cycle time, list the
   IR instruction -> functional unit mapping, and summarize a database.
   `emit` prints the built-in 40 nm database in canonical form — the
   shipped share/salam-40nm.db is exactly its output, and the test suite
   holds the two byte-identical. *)

module C = Salam_config
module Fu = Salam_hw.Fu
module Profile = Salam_hw.Profile
open Cmdliner

let db_arg =
  let doc = "Characterization database file; omitted, the built-in 40 nm database." in
  Arg.(value & opt (some file) None & info [ "db" ] ~docv:"FILE" ~doc)

let load_db = function
  | None -> Ok C.builtin
  | Some path -> C.load path

let or_die = function
  | Ok v -> v
  | Error e ->
      Printf.eprintf "salam_config: %s\n" e;
      exit 1

(* --- validate ------------------------------------------------------------ *)

let validate_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Database to check.")
  in
  let run file =
    match C.load file with
    | Ok db ->
        Printf.printf "%s: OK — %s, %d nm, %d cycle time(s), hash %s\n" file (C.name db)
          (C.node_nm db)
          (List.length (C.cycle_times db))
          (C.hash db)
    | Error e ->
        Printf.eprintf "salam_config: %s\n" e;
        exit 1
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Parse a database file with the strict parser and report its identity; non-zero \
          exit on any malformation.")
    Term.(const run $ file)

(* --- list-fus ------------------------------------------------------------ *)

let list_fus_cmd =
  let ct =
    let doc = "Cycle time to list the characterization at (default: every declared one)." in
    Arg.(value & opt (some float) None & info [ "cycle-time" ] ~docv:"NS" ~doc)
  in
  let run db ct =
    let db = or_die (load_db db) in
    let cts =
      match ct with
      | None -> C.cycle_times db
      | Some c ->
          if not (List.mem c (C.cycle_times db)) then
            or_die
              (Error
                 (Printf.sprintf "database %s has no %gns characterization" (C.name db) c));
          [ c ]
    in
    List.iter
      (fun ct ->
        let p = or_die (C.db_profile db ~cycle_time_ns:ct) in
        Printf.printf "# %s @ %gns (%.0f MHz)\n" (C.name db) ct
          (C.clock_mhz_of_cycle_time ct);
        Printf.printf "%-16s %8s %10s %12s %12s %12s\n" "unit" "latency" "pipelined"
          "area um2" "leak mW" "dyn pJ/op";
        List.iter
          (fun cls ->
            let s = Profile.spec p cls in
            Printf.printf "%-16s %8d %10s %12g %12g %12g\n" (Fu.to_string cls)
              s.Profile.latency
              (if s.Profile.pipelined then "yes" else "no")
              s.Profile.area_um2 s.Profile.leakage_mw s.Profile.dynamic_pj)
          Fu.all)
      cts
  in
  Cmd.v
    (Cmd.info "list-fus"
       ~doc:"List every functional unit's latency/area/power at a cycle time.")
    Term.(const run $ db_arg $ ct)

(* --- list-instructions --------------------------------------------------- *)

(* the static opcode -> class table [Fu.of_instr] implements; kept here
   as data so the CLI needs no IR values to print it *)
let instruction_classes =
  [
    ("add, sub, icmp", Some Fu.Int_adder);
    ("gep (address arithmetic)", Some Fu.Int_adder);
    ("mul", Some Fu.Int_multiplier);
    ("sdiv, udiv, srem, urem", Some Fu.Int_divider);
    ("shl, lshr, ashr", Some Fu.Shifter);
    ("and, or, xor", Some Fu.Bitwise);
    ("select", Some Fu.Mux);
    ("trunc, zext, sext, fptrunc, fpext, fptosi, sitofp", Some Fu.Converter);
    ("fadd, fsub, fcmp (f32)", Some Fu.Fp_add_sp);
    ("fadd, fsub, fcmp (f64)", Some Fu.Fp_add_dp);
    ("fmul (f32)", Some Fu.Fp_mul_sp);
    ("fmul (f64)", Some Fu.Fp_mul_dp);
    ("fdiv, frem (f32)", Some Fu.Fp_div_sp);
    ("fdiv, frem (f64)", Some Fu.Fp_div_dp);
    ("call (sqrt/exp/log/sin/cos intrinsics)", Some Fu.Fp_special);
    ("load, store", None);
    ("phi, br, cond_br, ret, alloca", None);
    ("bitcast, ptrtoint, inttoptr", None);
  ]

let list_instructions_cmd =
  let run () =
    Printf.printf "%-52s %s\n" "instructions" "functional unit";
    List.iter
      (fun (ops, cls) ->
        Printf.printf "%-52s %s\n" ops
          (match cls with Some c -> Fu.to_string c | None -> "(none: ports/control)"))
      instruction_classes
  in
  Cmd.v
    (Cmd.info "list-instructions"
       ~doc:"Show which functional unit each IR instruction elaborates to.")
    Term.(const run $ const ())

(* --- info ---------------------------------------------------------------- *)

let info_cmd =
  let run db =
    let db = or_die (load_db db) in
    Printf.printf "name:         %s\n" (C.name db);
    Printf.printf "node:         %d nm\n" (C.node_nm db);
    Printf.printf "cycle times:  %s\n"
      (String.concat ", " (List.map (Printf.sprintf "%gns") (C.cycle_times db)));
    Printf.printf "fu classes:   %d\n" (List.length Fu.all);
    Printf.printf "records:      %d\n"
      (List.length (C.cycle_times db) * (List.length Fu.all + 1));
    Printf.printf "hash:         %s\n" (C.hash db)
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Summarize a database: identity, coverage and content hash.")
    Term.(const run $ db_arg)

(* --- emit ---------------------------------------------------------------- *)

let emit_cmd =
  let run () = print_string (C.render C.builtin) in
  Cmd.v
    (Cmd.info "emit"
       ~doc:
         "Print the built-in 40 nm database in canonical text form (the source of the \
          shipped share/salam-40nm.db).")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "salam_config" ~version:"1.0"
      ~doc:"Inspect and validate loadable hardware characterization databases."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ validate_cmd; list_fus_cmd; list_instructions_cmd; info_cmd; emit_cmd ]))
