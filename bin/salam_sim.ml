(* Command-line front end: run any suite workload on a configurable
   system and print the simulation results.

     dune exec bin/salam_sim.exe -- list
     dune exec bin/salam_sim.exe -- run gemm --ports 8 --clock 500
     dune exec bin/salam_sim.exe -- run stencil2d --memory cache --cache-size 4096 *)

open Cmdliner
module Engine = Salam_engine.Engine

let workloads () = Salam_workloads.Suite.standard ()

let list_cmd =
  let doc = "List the available workloads." in
  let run () =
    List.iter
      (fun (w : Salam_workloads.Workload.t) ->
        Printf.printf "%-24s (%d buffers, %d bytes)\n" w.Salam_workloads.Workload.name
          (List.length w.Salam_workloads.Workload.buffers)
          (Salam_workloads.Workload.total_buffer_bytes w))
      (workloads ())
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_workload name clock_mhz memory cache_size ports write_ports banks fadd_limit
    engine_mode =
  match Salam_workloads.Suite.by_name name with
  | None ->
      Printf.eprintf "unknown workload %s; try `salam_sim list`\n" name;
      exit 1
  | Some w ->
      let mode =
        match Engine.mode_of_string engine_mode with
        | Some m -> m
        | None ->
            Printf.eprintf "unknown engine mode %s (dynamic|compiled)\n" engine_mode;
            exit 1
      in
      let memory =
        match memory with
        | "spm" ->
            Salam.Config.Spm { read_ports = ports; write_ports; banks; latency = 1 }
        | "cache" ->
            Salam.Config.Cache
              { size = cache_size; line_bytes = 64; ways = 4; hit_latency = 2 }
        | "dram" -> Salam.Config.Dram_direct
        | other ->
            Printf.eprintf "unknown memory kind %s (spm|cache|dram)\n" other;
            exit 1
      in
      let fu_limits =
        if fadd_limit > 0 then
          [ (Salam_hw.Fu.Fp_add_dp, fadd_limit); (Salam_hw.Fu.Fp_mul_dp, fadd_limit) ]
        else []
      in
      let config =
        {
          Salam.Config.default with
          Salam.Config.clock_mhz;
          memory;
          fu_limits;
          engine = { Engine.default_config with Engine.fu_limits; Engine.mode };
        }
      in
      let r = Salam.simulate ~config w in
      let s = r.Salam.stats in
      Printf.printf "workload            : %s\n" r.Salam.name;
      Printf.printf "correct             : %b\n" r.Salam.correct;
      Printf.printf "cycles              : %Ld (%.3f us at %.0f MHz)\n" r.Salam.cycles
        (r.Salam.seconds *. 1e6) clock_mhz;
      Printf.printf "dynamic instructions: %d\n" s.Engine.dynamic_instructions;
      Printf.printf "loads / stores      : %d / %d\n" s.Engine.loads_issued
        s.Engine.stores_issued;
      Printf.printf "stall cycles        : %d of %d active\n" s.Engine.stall_cycles
        s.Engine.active_cycles;
      Printf.printf "total power         : %.3f mW\n" (Salam.total_mw r.Salam.power);
      Printf.printf "area                : %.0f um^2\n" r.Salam.area_um2;
      (match r.Salam.spm_accesses with
      | Some (reads, writes) -> Printf.printf "SPM reads / writes  : %d / %d\n" reads writes
      | None -> ());
      (match r.Salam.cache_hits_misses with
      | Some (h, m) -> Printf.printf "cache hits / misses : %d / %d\n" h m
      | None -> ());
      Printf.printf "host wall time      : %.3f s\n" r.Salam.wall_seconds;
      if not r.Salam.correct then exit 2

let run_cmd =
  let doc = "Simulate one workload end to end." in
  let wname = Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD") in
  let clock =
    Arg.(value & opt float 500.0 & info [ "clock" ] ~docv:"MHZ" ~doc:"Accelerator clock.")
  in
  let memory =
    Arg.(value & opt string "spm" & info [ "memory" ] ~docv:"KIND" ~doc:"spm, cache or dram.")
  in
  let cache_size =
    Arg.(value & opt int 4096 & info [ "cache-size" ] ~docv:"BYTES" ~doc:"Cache capacity.")
  in
  let ports =
    Arg.(value & opt int 2 & info [ "ports" ] ~docv:"N" ~doc:"SPM read ports.")
  in
  let write_ports =
    Arg.(value & opt int 1 & info [ "write-ports" ] ~docv:"N" ~doc:"SPM write ports.")
  in
  let banks = Arg.(value & opt int 4 & info [ "banks" ] ~docv:"N" ~doc:"SPM banks.") in
  let fadd =
    Arg.(
      value & opt int 0
      & info [ "fp-units" ] ~docv:"N"
          ~doc:"Cap double-precision FADD/FMUL units (0 = 1:1 map).")
  in
  let engine_mode =
    Arg.(
      value & opt string "compiled"
      & info [ "engine-mode" ] ~docv:"MODE"
          ~doc:
            "Engine scheduling implementation: $(b,compiled) replays the \
             schedule-specialization pre-pass, $(b,dynamic) derives every decision at run \
             time. Results are bit-identical.")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_workload $ wname $ clock $ memory $ cache_size $ ports $ write_ports $ banks
      $ fadd $ engine_mode)

let () =
  let doc = "gem5-SALAM reproduction: LLVM-based accelerator simulation" in
  let info = Cmd.info "salam_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd ]))
