(* Command-line front end: run any suite workload on a configurable
   system and print the simulation results.

     dune exec bin/salam_sim.exe -- list
     dune exec bin/salam_sim.exe -- run gemm --ports 8 --clock 500
     dune exec bin/salam_sim.exe -- run stencil2d --memory cache --cache-size 4096
     dune exec bin/salam_sim.exe -- run gemm --invocations 4 --fast-forward 3

   Exit status: 0 on success, 2 when the simulated output fails the
   workload's golden model; argument errors are Cmdliner's. *)

open Cmdliner
module Engine = Salam_engine.Engine
module W = Salam_workloads.Workload

let workloads () = Salam_workloads.Suite.standard ()

let list_cmd =
  let doc = "List the available workloads." in
  let run () =
    List.iter
      (fun (w : W.t) ->
        Printf.printf "%-24s (%d buffers, %d bytes)\n" w.W.name
          (List.length w.W.buffers)
          (W.total_buffer_bytes w))
      (workloads ());
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* Bad values are Cmdliner parse errors with a usage message, not ad-hoc
   mid-run exits. *)
let workload_conv =
  let parse s =
    match Salam_workloads.Suite.by_name s with
    | Some w -> Ok w
    | None -> Error (`Msg (Printf.sprintf "unknown workload %s; try `salam_sim list'" s))
  in
  let print ppf (w : W.t) = Format.pp_print_string ppf w.W.name in
  Arg.conv (parse, print)

let memory_conv = Arg.enum [ ("spm", `Spm); ("cache", `Cache); ("dram", `Dram) ]

let mode_conv = Arg.enum [ ("dynamic", Engine.Dynamic); ("compiled", Engine.Compiled) ]

(* --hw-db / --cycle-time select a hardware characterization from a
   loadable database. A cycle time pins the clock to the matching
   frequency (a profile characterized at 5 ns is meaningless at 500 MHz),
   overriding --clock. *)
let resolve_hw hw_db cycle_time clock_mhz =
  let ( let* ) r f = match r with Ok v -> f v | Error e -> Error (`Msg e) in
  let* db = match hw_db with None -> Ok Salam_config.builtin | Some p -> Salam_config.load p in
  match cycle_time with
  | None ->
      (* keep the compiled-in default profile when neither flag is given:
         byte-compatible with every pre-database invocation *)
      if hw_db = None then Ok (Salam_hw.Profile.default_40nm, clock_mhz)
      else
        let* p = Salam_config.db_profile db ~cycle_time_ns:2.0 in
        Ok (p, clock_mhz)
  | Some ct ->
      let* p = Salam_config.db_profile db ~cycle_time_ns:ct in
      Ok (p, Salam_config.clock_mhz_of_cycle_time ct)

let run_workload (w : W.t) clock_mhz memory cache_size ports write_ports banks fadd_limit mode
    invocations fast_forward island_domains hw_db cycle_time =
  if invocations < 1 then Error (`Msg "--invocations must be at least 1")
  else if island_domains < 1 then Error (`Msg "--island-domains must be at least 1")
  else if
    match fast_forward with Some k -> k < 0 || k >= invocations | None -> false
  then
    Error
      (`Msg
        (Printf.sprintf "--fast-forward must name a roadmark inside the schedule: 0 <= K < %d"
           invocations))
  else begin
    match resolve_hw hw_db cycle_time clock_mhz with
    | Error _ as e -> e
    | Ok (hw, clock_mhz) ->
    let memory =
      match memory with
      | `Spm -> Salam.Config.Spm { read_ports = ports; write_ports; banks; latency = 1 }
      | `Cache ->
          Salam.Config.Cache { size = cache_size; line_bytes = 64; ways = 4; hit_latency = 2 }
      | `Dram -> Salam.Config.Dram_direct
    in
    let fu_limits =
      if fadd_limit > 0 then
        [ (Salam_hw.Fu.Fp_add_dp, fadd_limit); (Salam_hw.Fu.Fp_mul_dp, fadd_limit) ]
      else []
    in
    let config =
      {
        Salam.Config.default with
        Salam.Config.clock_mhz;
        memory;
        fu_limits;
        engine = { Engine.default_config with Engine.fu_limits; Engine.mode };
        hw;
      }
    in
    let from =
      match fast_forward with
      | None -> None
      | Some k ->
          let snap = Salam.warm_up ~config ~invocations:k w in
          Printf.printf "fast-forward        : interpreter to %s, then %d detailed\n"
            (Salam.roadmark_name k) (invocations - k);
          Some snap
    in
    let r = Salam.simulate ~config ~invocations ~island_domains ?from w in
    let s = r.Salam.stats in
    Printf.printf "workload            : %s\n" r.Salam.name;
    Printf.printf "hw profile          : %s\n" r.Salam.hw.Salam_hw.Profile.profile_name;
    if invocations > 1 then Printf.printf "invocations         : %d\n" invocations;
    Printf.printf "correct             : %b\n" r.Salam.correct;
    Printf.printf "cycles              : %Ld (%.3f us at %.0f MHz)\n" r.Salam.cycles
      (r.Salam.seconds *. 1e6) clock_mhz;
    Printf.printf "dynamic instructions: %d\n" s.Engine.dynamic_instructions;
    Printf.printf "loads / stores      : %d / %d\n" s.Engine.loads_issued s.Engine.stores_issued;
    Printf.printf "stall cycles        : %d of %d active\n" s.Engine.stall_cycles
      s.Engine.active_cycles;
    Printf.printf "total power         : %.3f mW\n" (Salam.total_mw r.Salam.power);
    Printf.printf "area                : %.0f um^2\n" r.Salam.area_um2;
    (match r.Salam.spm_accesses with
    | Some (reads, writes) -> Printf.printf "SPM reads / writes  : %d / %d\n" reads writes
    | None -> ());
    (match r.Salam.cache_hits_misses with
    | Some (h, m) -> Printf.printf "cache hits / misses : %d / %d\n" h m
    | None -> ());
    Printf.printf "host wall time      : %.3f s\n" r.Salam.wall_seconds;
    (* statistics cover the post-roadmark epoch only; correctness covers
       the whole schedule's final buffers *)
    Ok (if r.Salam.correct then 0 else 2)
  end

let run_cmd =
  let doc = "Simulate one workload end to end." in
  let wname = Arg.(required & pos 0 (some workload_conv) None & info [] ~docv:"WORKLOAD") in
  let clock =
    Arg.(value & opt float 500.0 & info [ "clock" ] ~docv:"MHZ" ~doc:"Accelerator clock.")
  in
  let memory =
    Arg.(value & opt memory_conv `Spm
         & info [ "memory" ] ~docv:"KIND" ~doc:"Memory attachment: $(b,spm), $(b,cache) or \
                                               $(b,dram).")
  in
  let cache_size =
    Arg.(value & opt int 4096 & info [ "cache-size" ] ~docv:"BYTES" ~doc:"Cache capacity.")
  in
  let ports =
    Arg.(value & opt int 2 & info [ "ports" ] ~docv:"N" ~doc:"SPM read ports.")
  in
  let write_ports =
    Arg.(value & opt int 1 & info [ "write-ports" ] ~docv:"N" ~doc:"SPM write ports.")
  in
  let banks = Arg.(value & opt int 4 & info [ "banks" ] ~docv:"N" ~doc:"SPM banks.") in
  let fadd =
    Arg.(
      value & opt int 0
      & info [ "fp-units" ] ~docv:"N"
          ~doc:"Cap double-precision FADD/FMUL units (0 = 1:1 map).")
  in
  let engine_mode =
    Arg.(
      value & opt mode_conv Engine.default_config.Engine.mode
      & info [ "engine-mode" ] ~docv:"MODE"
          ~doc:
            "Engine scheduling implementation: $(b,compiled) replays the \
             schedule-specialization pre-pass, $(b,dynamic) derives every decision at run \
             time. Results are bit-identical.")
  in
  let invocations =
    Arg.(
      value & opt int 1
      & info [ "invocations" ] ~docv:"N"
          ~doc:"Run the kernel $(docv) times back-to-back on the same buffers.")
  in
  let fast_forward =
    Arg.(
      value & opt (some int) None
      & info [ "fast-forward" ] ~docv:"K"
          ~doc:
            "Reach the roadmark after invocation $(docv) through the functional interpreter \
             (orders of magnitude faster than detailed simulation), snapshot, and run only \
             the remaining invocations in the detailed engine. Statistics then cover the \
             post-roadmark epoch; results are bit-identical to an uninterrupted detailed \
             run.")
  in
  let island_domains =
    Arg.(
      value & opt int 1
      & info [ "island-domains" ] ~docv:"N"
          ~doc:
            "Cap on OCaml domains used to pre-execute per-accelerator event blocks in \
             parallel. Results are bit-identical for any value — single-accelerator runs \
             like this one gain nothing, but the flag exercises the same code path the \
             multi-accelerator scenarios speed up.")
  in
  let hw_db =
    Arg.(
      value & opt (some file) None
      & info [ "hw-db" ] ~docv:"FILE"
          ~doc:
            "Load the hardware characterization from a salam_config database instead of \
             the compiled-in 40 nm constants (its 2 ns row unless --cycle-time names \
             another).")
  in
  let cycle_time =
    Arg.(
      value & opt (some float) None
      & info [ "cycle-time" ] ~docv:"NS"
          ~doc:
            "Characterized cycle time to elaborate under. Must be declared in the \
             database; also pins the clock to the matching frequency, overriding \
             $(b,--clock).")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      term_result
        (const run_workload $ wname $ clock $ memory $ cache_size $ ports $ write_ports
       $ banks $ fadd $ engine_mode $ invocations $ fast_forward $ island_domains $ hw_db
       $ cycle_time))

let () =
  let doc = "gem5-SALAM reproduction: LLVM-based accelerator simulation" in
  let info = Cmd.info "salam_sim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd ]))
