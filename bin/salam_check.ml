(* Differential validation harness CLI.

     dune exec bin/salam_check.exe -- --all
     dune exec bin/salam_check.exe -- --all --suite standard --memory cache
     dune exec bin/salam_check.exe -- --fuzz 500 --seed 7
     dune exec bin/salam_check.exe -- --fuzz 50 --plant-bug   (must find it)

   Exit status: 0 when every check passes, 1 on any divergence,
   invariant violation or fuzz failure. *)

open Cmdliner

let memory_of_string = function
  | "spm" -> Ok Check_harness.Spm
  | "cache" -> Ok (Check_harness.Cache { size = 4096; ways = 4 })
  | "dram" -> Ok Check_harness.Dram
  | other -> Error (Printf.sprintf "unknown memory kind %s (spm|cache|dram)" other)

let run_all ~suite ~memory_kind ~seed ~mode ?profile () =
  let workloads =
    match suite with
    | "quick" -> Salam_workloads.Suite.quick ()
    | "standard" -> Salam_workloads.Suite.standard ()
    | other ->
        Printf.eprintf "unknown suite %s (quick|standard)\n" other;
        exit 1
  in
  let reports = Check_oracle.check_all ~memory_kind ~seed ~mode ?profile workloads in
  let failed = ref 0 in
  List.iter
    (fun (r : Check_oracle.report) ->
      match r.Check_oracle.r_result with
      | Ok () -> Printf.printf "PASS %s\n" r.Check_oracle.r_workload
      | Error f ->
          incr failed;
          Printf.printf "FAIL %s: %s\n" r.Check_oracle.r_workload
            (Check_oracle.failure_to_string f))
    reports;
  Printf.printf "%d/%d workloads agree (interpreter vs %s engine, invariants on)\n"
    (List.length reports - !failed)
    (List.length reports)
    (Salam_engine.Engine.mode_to_string mode);
  !failed = 0

let run_modes ~suite ~memory_kind ~seed ?profile () =
  let workloads =
    match suite with
    | "quick" -> Salam_workloads.Suite.quick ()
    | "standard" -> Salam_workloads.Suite.standard ()
    | other ->
        Printf.eprintf "unknown suite %s (quick|standard)\n" other;
        exit 1
  in
  let failed = ref 0 in
  List.iter
    (fun (w : Salam_workloads.Workload.t) ->
      match Check_oracle.check_modes ~memory_kind ~seed ?profile w with
      | Ok () -> Printf.printf "PASS %s\n" w.Salam_workloads.Workload.name
      | Error f ->
          incr failed;
          Printf.printf "FAIL %s: %s\n" w.Salam_workloads.Workload.name
            (Check_oracle.failure_to_string f))
    workloads;
  Printf.printf "%d/%d workloads bit-identical (compiled vs dynamic engine)\n"
    (List.length workloads - !failed)
    (List.length workloads);
  !failed = 0

let run_snapshot ~suite ~memory_kind =
  let workloads =
    match suite with
    | "quick" -> Salam_workloads.Suite.quick ()
    | "standard" -> Salam_workloads.Suite.standard ()
    | other ->
        Printf.eprintf "unknown suite %s (quick|standard)\n" other;
        exit 1
  in
  (* one cnn_pipeline stage rides along: convolution exercises the
     fast-forward path on a workload the DSE sweeps care about *)
  let workloads = workloads @ [ Salam_workloads.Cnn.conv () ] in
  let reports =
    Check_snapshot.check_all ~memory_kinds:[ memory_kind ]
      ~modes:[ Salam_engine.Engine.Dynamic; Salam_engine.Engine.Compiled ]
      workloads
  in
  let failed = ref 0 in
  List.iter
    (fun (r : Check_snapshot.report) ->
      match r.Check_snapshot.r_result with
      | Ok () -> Printf.printf "PASS %s\n" (Check_snapshot.report_to_string r)
      | Error _ ->
          incr failed;
          Printf.printf "FAIL %s\n" (Check_snapshot.report_to_string r))
    reports;
  Printf.printf "%d/%d fast-forward points bit-identical (snapshot oracle)\n"
    (List.length reports - !failed)
    (List.length reports);
  !failed = 0

let run_parallel ~suite ~memory_kind ~seed =
  let workloads =
    match suite with
    | "quick" -> Salam_workloads.Suite.quick ()
    | "standard" -> Salam_workloads.Suite.standard ()
    | other ->
        Printf.eprintf "unknown suite %s (quick|standard)\n" other;
        exit 1
  in
  let failed = ref 0 in
  List.iter
    (fun (w : Salam_workloads.Workload.t) ->
      match Check_parallel.check_workload ~memory_kind ~seed w with
      | Ok () -> Printf.printf "PASS %s\n" w.Salam_workloads.Workload.name
      | Error msg ->
          incr failed;
          Printf.printf "FAIL %s: %s\n" w.Salam_workloads.Workload.name msg)
    workloads;
  (* the multi-accelerator leg: three-island CNN pipelines *)
  let scenarios_ok =
    match Check_parallel.check_scenarios () with
    | Ok () ->
        Printf.printf "PASS cnn_pipeline scenarios\n";
        true
    | Error msg ->
        Printf.printf "FAIL cnn_pipeline scenarios: %s\n" msg;
        false
  in
  Printf.printf "%d/%d workloads bit-identical (sequential vs island record/replay)\n"
    (List.length workloads - !failed)
    (List.length workloads);
  !failed = 0 && scenarios_ok

let run_fuzz ~count ~memory_kind ~seed ~plant_bug =
  let mutate = if plant_bug then Some Check_fuzz.plant_float_bug else None in
  Printf.printf "fuzzing %d kernels (seed %Ld%s)...\n%!" count seed
    (if plant_bug then ", planted float bug" else "");
  let failures = Check_fuzz.run ?mutate ~memory_kind ~seed ~count () in
  List.iter
    (fun (f : Check_fuzz.case_failure) ->
      Printf.printf "FAIL case %d: %s\nshrunk kernel:\n%s\n" f.Check_fuzz.cf_case
        (Check_fuzz.failure_kind_to_string f.Check_fuzz.cf_failure)
        (Check_fuzz.kernel_to_string f.Check_fuzz.cf_shrunk);
      match f.Check_fuzz.cf_trace with
      | [] -> ()
      | lines ->
          Printf.printf "last %d trace events of the shrunk reproduction:\n"
            (List.length lines);
          List.iter (fun l -> Printf.printf "  %s\n" l) lines)
    failures;
  if plant_bug then begin
    (* detection run: success means the oracle caught the planted bug *)
    Printf.printf "planted bug detected in %d/%d cases\n" (List.length failures) count;
    failures <> []
  end
  else begin
    Printf.printf "%d/%d cases divergence-free\n" (count - List.length failures) count;
    failures = []
  end

(* the --hw-db/--cycle-time leg: oracle a loadable, possibly non-default
   characterization. The interpreter side is profile-free, so a pass
   means the engine's timing under that table still computes the right
   answer in both scheduling modes. *)
let resolve_profile hw_db cycle_time =
  match (hw_db, cycle_time) with
  | None, None -> None
  | _ ->
      let db =
        match hw_db with
        | None -> Salam_config.builtin
        | Some path -> (
            match Salam_config.load path with
            | Ok db -> db
            | Error e ->
                Printf.eprintf "%s\n" e;
                exit 1)
      in
      let ct = Option.value cycle_time ~default:2.0 in
      (match Salam_config.db_profile db ~cycle_time_ns:ct with
      | Ok p -> Some p
      | Error e ->
          Printf.eprintf "%s\n" e;
          exit 1)

let main all modes snapshot parallel fuzz suite memory seed plant_bug engine_mode hw_db
    cycle_time =
  match memory_of_string memory with
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  | Ok memory_kind -> (
      match Salam_engine.Engine.mode_of_string engine_mode with
      | None ->
          Printf.eprintf "unknown engine mode %s (dynamic|compiled)\n" engine_mode;
          exit 1
      | Some mode ->
          let profile = resolve_profile hw_db cycle_time in
          (match profile with
          | Some p ->
              Printf.printf "hardware profile: %s\n" p.Salam_hw.Profile.profile_name
          | None -> ());
          let ran = ref false in
          let ok = ref true in
          if all then begin
            ran := true;
            ok := run_all ~suite ~memory_kind ~seed ~mode ?profile () && !ok
          end;
          if modes then begin
            ran := true;
            ok := run_modes ~suite ~memory_kind ~seed ?profile () && !ok
          end;
          if snapshot then begin
            ran := true;
            ok := run_snapshot ~suite ~memory_kind && !ok
          end;
          if parallel then begin
            ran := true;
            ok := run_parallel ~suite ~memory_kind ~seed && !ok
          end;
          (match fuzz with
          | Some count when count > 0 ->
              ran := true;
              ok := run_fuzz ~count ~memory_kind ~seed ~plant_bug && !ok
          | Some _ | None -> ());
          if not !ran then begin
            Printf.eprintf
              "nothing to do: pass --all, --modes, --snapshot, --parallel and/or --fuzz N\n";
            exit 2
          end;
          if not !ok then exit 1)

let cmd =
  let all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Run the interpreter-vs-engine oracle on every suite workload.")
  in
  let fuzz =
    Arg.(value & opt (some int) None
         & info [ "fuzz" ] ~docv:"N" ~doc:"Fuzz $(docv) random kernels against the oracle.")
  in
  let suite =
    Arg.(value & opt string "quick"
         & info [ "suite" ] ~docv:"SUITE" ~doc:"Workload suite for --all: quick or standard.")
  in
  let memory =
    Arg.(value & opt string "spm"
         & info [ "memory" ] ~docv:"KIND" ~doc:"Memory attachment: spm, cache or dram.")
  in
  let seed =
    Arg.(value & opt int64 42L
         & info [ "seed" ] ~docv:"SEED" ~doc:"Master seed for datasets and kernel generation.")
  in
  let plant_bug =
    Arg.(value & flag
         & info [ "plant-bug" ]
             ~doc:"Flip a float op in the engine's copy of each fuzz kernel; succeed only if \
                   the oracle detects it.")
  in
  let modes =
    Arg.(value & flag
         & info [ "modes" ]
             ~doc:"Run the compiled-vs-dynamic engine oracle on every suite workload: both \
                   scheduling implementations must be bit-identical (buffers, statistics, \
                   trace streams).")
  in
  let snapshot =
    Arg.(value & flag
         & info [ "snapshot" ]
             ~doc:"Run the fast-forward snapshot oracle on every suite workload plus a \
                   cnn_pipeline stage: interpreter warm-up, detailed capture and \
                   uninterrupted runs must be bit-identical past the roadmark (memory, \
                   statistics, trace stream), in both engine modes.")
  in
  let parallel =
    Arg.(value & flag
         & info [ "parallel" ]
             ~doc:"Run the sequential-vs-parallel oracle: every suite workload under island \
                   record/replay (record_all, 2 and 4 domains) plus the three-accelerator \
                   cnn_pipeline scenarios must be bit-identical to the sequential kernel \
                   (memory, return values, statistics, trace streams).")
  in
  let engine_mode =
    Arg.(value & opt string "compiled"
         & info [ "engine-mode" ] ~docv:"MODE"
             ~doc:"Engine scheduling implementation for the --all oracle leg: dynamic or \
                   compiled.")
  in
  let hw_db =
    Arg.(value & opt (some file) None
         & info [ "hw-db" ] ~docv:"FILE"
             ~doc:"Run the --all/--modes oracles under a characterization loaded from a \
                   salam_config database (its 2 ns row unless --cycle-time names another).")
  in
  let cycle_time =
    Arg.(value & opt (some float) None
         & info [ "cycle-time" ] ~docv:"NS"
             ~doc:"Characterized cycle time for the oracle runs; must be declared in the \
                   database (the built-in one when --hw-db is omitted).")
  in
  let doc = "differential validation: interpreter-vs-engine oracle, kernel fuzzer" in
  Cmd.v
    (Cmd.info "salam_check" ~version:"1.0.0" ~doc)
    Term.(
      const main $ all $ modes $ snapshot $ parallel $ fuzz $ suite $ memory $ seed
      $ plant_bug $ engine_mode $ hw_db $ cycle_time)

let () = exit (Cmd.eval cmd)
