(* Design-space-exploration CLI.

     dune exec bin/salam_dse.exe -- run --workload gemm --store gemm.jsonl
     dune exec bin/salam_dse.exe -- run --workload gemm --mem spm,cache \
         --ports 1,2,4,8,16 --fu 0,2,4,8 --cache-size 512,2048,8192
     dune exec bin/salam_dse.exe -- run --workload gemm --strategy pareto --rounds 4
     dune exec bin/salam_dse.exe -- resume --workload gemm --store gemm.jsonl
     dune exec bin/salam_dse.exe -- front --store gemm.jsonl --csv front.csv
     dune exec bin/salam_dse.exe -- explain-config --store gemm.jsonl 8f3a...

   Exit status: 0 on success; 1 on bad arguments or a missing store;
   2 when any simulated point computed a wrong result. *)

open Cmdliner
module Point = Salam_dse.Point
module Space = Salam_dse.Space
module Store = Salam_dse.Store
module Pareto = Salam_dse.Pareto
module Explore = Salam_dse.Explore
module Measurement = Salam_dse.Measurement

let die fmt = Printf.ksprintf (fun s -> Printf.eprintf "%s\n" s; exit 1) fmt

(* comma-separated value lists for axis flags *)
let split_ints flag s =
  List.map
    (fun tok ->
      match int_of_string_opt (String.trim tok) with
      | Some v -> v
      | None -> die "--%s: %S is not an integer" flag tok)
    (String.split_on_char ',' s)

let split_floats flag s =
  List.map
    (fun tok ->
      match float_of_string_opt (String.trim tok) with
      | Some v -> v
      | None -> die "--%s: %S is not a number" flag tok)
    (String.split_on_char ',' s)

let split_mems s =
  List.map
    (fun tok ->
      match Point.memory_kind_of_string (String.trim tok) with
      | Some m -> m
      | None -> die "--mem: %S is not spm, cache or dram" tok)
    (String.split_on_char ',' s)

let target_of ~workload ~n =
  if workload = "gemm" then Explore.gemm_target ~n ()
  else
    match Explore.suite_target workload with
    | Ok t -> t
    | Error e -> die "%s; try `salam_sim list`" e

(* The sweep is declared as a union of one space per memory kind, so the
   port axes only multiply the SPM cloud and the capacity axis only the
   cache cloud — the same shape as the paper's Fig 13. *)
let spaces_of ~mems ~ports ~write_ports ~banks ~fu ~cache_sizes ~unrolls ~junrolls ~clocks
    ~cycle_times ~hw_dbs =
  (* --cycle-time replaces the clock axis entirely: each cycle time pins
     the matching frequency through the axis application, and mixing an
     explicit clock list in would desynchronize profile and clock *)
  let rate_axis =
    match cycle_times with
    | Some cts -> [ Space.Cycle_time_ns cts ]
    | None -> [ Space.Clock_mhz clocks ]
  in
  let db_axis = match hw_dbs with [] -> [] | hs -> [ Space.Hw_db hs ] in
  let common =
    [ Space.Fu_limit fu; Space.Unroll unrolls; Space.Junroll junrolls ]
    @ rate_axis @ db_axis
  in
  List.map
    (fun mem ->
      match mem with
      | Point.Spm ->
          let derive, port_axes =
            match (write_ports, banks) with
            | None, None -> (Space.spm_balanced, [ Space.Read_ports ports ])
            | wp, b ->
                let wp_axis = match wp with Some l -> [ Space.Write_ports l ] | None -> [] in
                let b_axis = match b with Some l -> [ Space.Banks l ] | None -> [] in
                (Space.spm_balanced, Space.Read_ports ports :: (wp_axis @ b_axis))
          in
          (* an explicit write-port/bank axis overrides the balanced
             derivation, which only fills the fields axes left alone *)
          let derive =
            match (write_ports, banks) with
            | None, None -> derive
            | Some _, Some _ -> Fun.id
            | Some _, None ->
                fun (p : Point.t) -> { p with Point.banks = 2 * p.Point.read_ports }
            | None, Some _ ->
                fun (p : Point.t) ->
                  { p with Point.write_ports = max 1 (p.Point.read_ports / 2) }
          in
          Space.create ~derive (Space.Memory [ Point.Spm ] :: port_axes @ common)
      | Point.Cache ->
          Space.create (Space.Memory [ Point.Cache ] :: Space.Cache_bytes cache_sizes :: common)
      | Point.Dram -> Space.create (Space.Memory [ Point.Dram ] :: common))
    mems

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let print_report ~verbose ~csv ~store report =
  let fmt = Format.std_formatter in
  if verbose then begin
    Measurement.pp_header fmt ();
    List.iter (Measurement.pp_row fmt) report.Explore.measurements;
    Format.fprintf fmt "@."
  end;
  Pareto.pp fmt ~front:report.Explore.front ~dominated:report.Explore.dominated;
  (match csv with
  | Some path ->
      write_file path (Pareto.to_csv report.Explore.measurements);
      Format.fprintf fmt "[csv written to %s]@." path
  | None -> ());
  print_endline (Explore.summary_line report ~store);
  if List.exists (fun m -> not m.Measurement.correct) report.Explore.measurements then begin
    Printf.eprintf "error: some design points computed wrong results\n";
    exit 2
  end

let run_sweep ~require_store workload n store_path server mems ports write_ports banks fu
    cache_sizes unrolls junrolls clocks cycle_times hw_db_paths strategy samples rounds seed
    domains island_domains csv quiet invocations fast_forward =
  let target = target_of ~workload ~n in
  if workload <> "gemm" && (unrolls <> [ 1 ] || junrolls <> [ 1 ]) then
    die "--unroll/--junroll only apply to the gemm target";
  if invocations < 1 then die "--invocations must be at least 1";
  (match fast_forward with
  | Some k when k < 0 || k >= invocations ->
      die "--fast-forward must name a roadmark inside the schedule: 0 <= K < %d" invocations
  | Some _ | None -> ());
  (* load and register every named database so the enumerated points can
     resolve their profiles; the axis carries content hashes *)
  let hw_dbs =
    List.map
      (fun path ->
        match Salam_config.load path with
        | Ok db -> Salam_config.register db
        | Error e -> die "%s" e)
      hw_db_paths
  in
  let spaces =
    spaces_of ~mems ~ports ~write_ports ~banks ~fu ~cache_sizes ~unrolls ~junrolls ~clocks
      ~cycle_times ~hw_dbs
  in
  let strategy =
    match strategy with
    | "exhaustive" -> Explore.Exhaustive
    | "random" -> Explore.Random { samples; seed = Int64.of_int seed }
    | "pareto" ->
        Explore.Pareto_walk { seeds = samples; rounds; seed = Int64.of_int seed }
    | other -> die "unknown strategy %s (exhaustive|random|pareto)" other
  in
  match server with
  | Some socket ->
      (* served mode: the daemon owns store, domains and snapshots; this
         process only enumerates the space and renders the report *)
      if store_path <> None then
        die "--server and --store are mutually exclusive (the daemon owns the store)";
      if require_store then die "resume works against a local --store, not --server";
      if domains <> None then die "--domains has no effect with --server (the daemon decides)";
      if island_domains <> None then
        die "--island-domains has no effect with --server (the daemon decides)";
      let spec =
        { Salam_served.Protocol.default_spec with workload; gemm_n = n; invocations; fast_forward }
      in
      let run () =
        Salam_served.Client.with_connection socket (fun client ->
            let remote points =
              let _done_, answers = Salam_served.Client.sweep client ~spec points in
              List.map (fun (served, m) -> (m, served)) answers
            in
            Explore.run ~remote ~invocations ?fast_forward ~target ~strategy spaces)
      in
      let report =
        match run () with
        | report -> report
        | exception Salam_served.Client.Protocol_error e -> die "served: %s" e
        | exception Failure e -> die "served: %s" e
      in
      print_report ~verbose:(not quiet) ~csv ~store:None report
  | None ->
      let store =
        match store_path with
        | Some path ->
            if require_store && not (Sys.file_exists path) then
              die "resume: store %s does not exist (use `run` to start a sweep)" path;
            let s = Store.open_ path in
            if Store.repaired_bytes s > 0 then
              Printf.eprintf "[dse] store %s: dropped %d bytes of damaged tail, kept %d results\n"
                path (Store.repaired_bytes s) (Store.size s);
            Some s
        | None ->
            if require_store then die "resume requires --store";
            None
      in
      let report =
        Explore.run ?store ?domains ?island_domains ?fast_forward ~invocations ~target
          ~strategy spaces
      in
      print_report ~verbose:(not quiet) ~csv ~store report;
      Option.iter Store.close store

let load_store path =
  if not (Sys.file_exists path) then die "store %s does not exist" path;
  Store.open_ path

let run_front store_path workload_filter csv =
  let store = load_store store_path in
  let ms =
    match workload_filter with
    | None -> Store.entries store
    | Some w -> List.filter (fun m -> m.Measurement.workload = w) (Store.entries store)
  in
  if ms = [] then die "store %s has no matching results" store_path;
  let front, dominated = Pareto.partition ms in
  Pareto.pp Format.std_formatter ~front ~dominated;
  match csv with
  | Some path ->
      write_file path (Pareto.to_csv front);
      Printf.printf "[csv written to %s]\n" path
  | None -> ()

let explain_config store_path fp_hex =
  let store = load_store store_path in
  match Point.fingerprint_of_hex fp_hex with
  | None -> die "%S is not a 16-hex-digit fingerprint" fp_hex
  | Some fp -> (
      match Store.find store ~fp with
      | None -> die "fingerprint %s not found in %s" fp_hex store_path
      | Some m ->
          let p = m.Measurement.point in
          Printf.printf "fingerprint   %s\nworkload      %s\npoint         %s\n"
            fp_hex m.Measurement.workload (Point.to_string p);
          List.iter (fun (k, v) -> Printf.printf "  %-12s %s\n" k v) (Point.to_fields p);
          let config = Point.to_config p in
          (match config.Salam.Config.memory with
          | Salam.Config.Spm { read_ports; write_ports; banks; latency } ->
              Printf.printf
                "elaborates to SPM: %d read / %d write ports, %d banks, latency %d\n"
                read_ports write_ports banks latency
          | Salam.Config.Cache { size; line_bytes; ways; hit_latency } ->
              Printf.printf
                "elaborates to cache: %dB, %dB lines, %d ways, hit latency %d\n" size
                line_bytes ways hit_latency
          | Salam.Config.Dram_direct -> Printf.printf "elaborates to direct DRAM\n");
          Printf.printf
            "measured      %Ld cycles, %.2f us, %.2f mW total (%.2f mW datapath), %.0f um2, correct=%b\n"
            m.Measurement.cycles
            (m.Measurement.seconds *. 1e6)
            m.Measurement.total_mw m.Measurement.datapath_mw m.Measurement.area_um2
            m.Measurement.correct)

(* --- cmdliner wiring ---------------------------------------------------- *)

let workload_arg =
  Arg.(value & opt string "gemm"
       & info [ "workload" ] ~docv:"NAME"
           ~doc:"Target workload: gemm (with unroll axes) or a suite workload by prefix.")

let n_arg =
  Arg.(value & opt int 16
       & info [ "gemm-n" ] ~docv:"N" ~doc:"GEMM matrix dimension (gemm target only).")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"FILE"
           ~doc:"Persistent JSONL result store; re-runs answer from it incrementally.")

let server_arg =
  Arg.(value & opt (some string) None
       & info [ "server" ] ~docv:"SOCKET"
           ~doc:"Evaluate points through a salam_served daemon at this Unix-domain \
                 socket instead of simulating locally. Mutually exclusive with \
                 $(b,--store); results are byte-identical either way.")

let list_arg ~name ~docv ~doc ~default c =
  Arg.value (Arg.opt c default (Arg.info [ name ] ~docv ~doc))

let ints name = Arg.conv ((fun s -> Ok (split_ints name s)), fun fmt _ -> Format.fprintf fmt "<ints>")
let floats name = Arg.conv ((fun s -> Ok (split_floats name s)), fun fmt _ -> Format.fprintf fmt "<floats>")
let mems_conv = Arg.conv ((fun s -> Ok (split_mems s)), fun fmt _ -> Format.fprintf fmt "<mems>")

let mems_arg =
  Arg.(value & opt mems_conv [ Point.Spm ]
       & info [ "mem"; "memory" ] ~docv:"KINDS"
           ~doc:"Memory kinds to sweep (comma-separated: spm,cache,dram).")

let ports_arg =
  list_arg ~name:"ports" ~docv:"LIST" ~default:[ 1; 2; 4; 8; 16 ]
    ~doc:"SPM read-port axis. Write ports and banks derive as read/2 and 2*read unless overridden."
    (ints "ports")

let write_ports_arg =
  Arg.(value & opt (some (ints "write-ports")) None
       & info [ "write-ports" ] ~docv:"LIST" ~doc:"Explicit SPM write-port axis.")

let banks_arg =
  Arg.(value & opt (some (ints "banks")) None
       & info [ "banks" ] ~docv:"LIST" ~doc:"Explicit SPM bank axis.")

let fu_arg =
  list_arg ~name:"fu" ~docv:"LIST" ~default:[ 0; 2; 4; 8 ]
    ~doc:"FADD/FMUL unit-count axis; 0 means the unconstrained 1:1 map." (ints "fu")

let cache_sizes_arg =
  list_arg ~name:"cache-size" ~docv:"LIST" ~default:[ 512; 2048; 8192 ]
    ~doc:"Cache capacity axis in bytes (cache memory kind only)." (ints "cache-size")

let unroll_arg =
  list_arg ~name:"unroll" ~docv:"LIST" ~default:[ 16 ]
    ~doc:"Inner (k) loop unroll axis (gemm target)." (ints "unroll")

let junroll_arg =
  list_arg ~name:"junroll" ~docv:"LIST" ~default:[ 8 ]
    ~doc:"Middle (j) loop unroll axis (gemm target)." (ints "junroll")

let clock_arg =
  list_arg ~name:"clock" ~docv:"LIST" ~default:[ 500.0 ] ~doc:"Clock axis in MHz." (floats "clock")

let cycle_times_arg =
  Arg.(value & opt (some (floats "cycle-time")) None
       & info [ "cycle-time" ] ~docv:"LIST"
           ~doc:"Hardware cycle-time axis in ns. Each value selects the database row \
                 characterized at that cycle time $(i,and) pins the clock to the matching \
                 frequency, replacing the $(b,--clock) axis.")

let hw_db_arg =
  Arg.(value & opt_all file []
       & info [ "hw-db" ] ~docv:"FILE"
           ~doc:"Load a characterization database and add it as an axis value (repeatable). \
                 Omitted, points use the built-in 40 nm database.")

let strategy_arg =
  Arg.(value & opt string "exhaustive"
       & info [ "strategy" ] ~docv:"S" ~doc:"Search strategy: exhaustive, random or pareto.")

let samples_arg =
  Arg.(value & opt int 8
       & info [ "samples" ] ~docv:"N" ~doc:"Sample count (random) / seed-point count (pareto).")

let rounds_arg =
  Arg.(value & opt int 4
       & info [ "rounds" ] ~docv:"N" ~doc:"Mutation rounds for the pareto strategy.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed for random/pareto.")

let island_domains_arg =
  Arg.(value & opt (some int) None
       & info [ "island-domains" ] ~docv:"N"
           ~doc:"Cap on OCaml domains used $(i,inside) each simulation for per-accelerator \
                 island blocks (bit-identical for any value; composes with --domains, which \
                 fans out $(i,across) design points).")

let domains_arg =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"N" ~doc:"Worker domains for simulation batches.")

let csv_arg =
  Arg.(value & opt (some string) None
       & info [ "csv" ] ~docv:"FILE" ~doc:"Also write every measurement as CSV to $(docv).")

let quiet_arg =
  Arg.(value & flag & info [ "quiet" ] ~doc:"Print only the front and the summary line.")

let invocations_arg =
  Arg.(value & opt int 1
       & info [ "invocations" ] ~docv:"N"
           ~doc:"Run each design point's kernel $(docv) times back-to-back.")

let fast_forward_arg =
  Arg.(value & opt (some int) None
       & info [ "fast-forward" ] ~docv:"K"
           ~doc:
             "Interpret-once/simulate-many: reach the roadmark after invocation $(docv) \
              with the functional interpreter once per workload and memory kind, then fork \
              every detailed simulation from that shared snapshot. Measurements cover the \
              post-roadmark epoch.")

let sweep_term ~require_store =
  Term.(
    const (run_sweep ~require_store)
    $ workload_arg $ n_arg $ store_arg $ server_arg $ mems_arg $ ports_arg $ write_ports_arg
    $ banks_arg $ fu_arg $ cache_sizes_arg $ unroll_arg $ junroll_arg $ clock_arg
    $ cycle_times_arg $ hw_db_arg
    $ strategy_arg $ samples_arg $ rounds_arg $ seed_arg $ domains_arg $ island_domains_arg
    $ csv_arg
    $ quiet_arg $ invocations_arg $ fast_forward_arg)

let run_cmd =
  let doc =
    "Run a sweep: enumerate the space, answer cached points from the store, simulate the rest."
  in
  Cmd.v (Cmd.info "run" ~doc) (sweep_term ~require_store:false)

let resume_cmd =
  let doc = "Continue a sweep against an existing store (fails if the store is missing)." in
  Cmd.v (Cmd.info "resume" ~doc) (sweep_term ~require_store:true)

let front_cmd =
  let store =
    Arg.(required & opt (some string) None
         & info [ "store" ] ~docv:"FILE" ~doc:"Store to read.")
  in
  let workload =
    Arg.(value & opt (some string) None
         & info [ "workload" ] ~docv:"NAME" ~doc:"Restrict to one workload identity.")
  in
  let doc = "Extract the Pareto front from a store without running anything." in
  Cmd.v (Cmd.info "front" ~doc) Term.(const run_front $ store $ workload $ csv_arg)

let explain_cmd =
  let store =
    Arg.(required & opt (some string) None
         & info [ "store" ] ~docv:"FILE" ~doc:"Store to read.")
  in
  let fp = Arg.(required & pos 0 (some string) None & info [] ~docv:"FINGERPRINT") in
  let doc = "Decode a stored fingerprint: the point, the elaborated config, the measurement." in
  Cmd.v (Cmd.info "explain-config" ~doc) Term.(const explain_config $ store $ fp)

let cmd =
  let doc = "design-space exploration with persistent result caching and Pareto extraction" in
  Cmd.group (Cmd.info "salam_dse" ~version:"1.0.0" ~doc)
    [ run_cmd; resume_cmd; front_cmd; explain_cmd ]

let () = exit (Cmd.eval cmd)
