(* Trace/observability CLI.

     dune exec bin/salam_trace.exe -- run --workload gemm --mem cache --format json -o gemm.json
     dune exec bin/salam_trace.exe -- run --workload fft --category cache.miss --from-tick 100000
     dune exec bin/salam_trace.exe -- diff a.trace b.trace
     dune exec bin/salam_trace.exe -- golden-check --dir test/golden
     dune exec bin/salam_trace.exe -- bless --dir test/golden

   Exit status: 0 on success; 1 on trace divergence or a failed check;
   2 on a workload that computed a wrong result. *)

open Cmdliner
module Trace = Salam_obs.Trace
module Engine = Salam_engine.Engine

let with_out path f =
  match path with
  | None -> f stdout
  | Some p ->
      let oc = open_out p in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let parse_categories = function
  | [] -> Ok None
  | names ->
      let rec go acc = function
        | [] -> Ok (Some (List.rev acc))
        | n :: rest -> (
            match Trace.category_of_string n with
            | Some c -> go (c :: acc) rest
            | None -> Error (Printf.sprintf "unknown category %s" n))
      in
      go [] names

(* engine counters are a record, not part of the system stats tree;
   flatten them next to the folded tree so one stats.txt has both *)
let engine_pairs (s : Engine.run_stats) =
  [
    ("engine.cycles", Int64.to_float s.Engine.cycles);
    ("engine.dynamic_instructions", float_of_int s.Engine.dynamic_instructions);
    ("engine.loads_issued", float_of_int s.Engine.loads_issued);
    ("engine.stores_issued", float_of_int s.Engine.stores_issued);
    ("engine.active_cycles", float_of_int s.Engine.active_cycles);
    ("engine.issue_cycles", float_of_int s.Engine.issue_cycles);
    ("engine.stall_cycles", float_of_int s.Engine.stall_cycles);
    ("engine.stall_load_only", float_of_int s.Engine.stall_load_only);
    ("engine.stall_load_compute", float_of_int s.Engine.stall_load_compute);
    ("engine.stall_load_store_compute", float_of_int s.Engine.stall_load_store_compute);
    ("engine.stall_other", float_of_int s.Engine.stall_other);
  ]

let run_trace workload memory cache_size format out categories component from_tick to_tick =
  match Salam_workloads.Suite.by_name workload with
  | None ->
      Printf.eprintf "unknown workload %s; try `salam_sim list`\n" workload;
      exit 1
  | Some w -> (
      match parse_categories categories with
      | Error msg ->
          Printf.eprintf "%s\n" msg;
          exit 1
      | Ok cats ->
          let memory =
            match memory with
            | "spm" -> Salam.Config.Spm { read_ports = 2; write_ports = 1; banks = 2; latency = 1 }
            | "cache" ->
                Salam.Config.Cache
                  { size = cache_size; line_bytes = 64; ways = 4; hit_latency = 2 }
            | "dram" -> Salam.Config.Dram_direct
            | other ->
                Printf.eprintf "unknown memory kind %s (spm|cache|dram)\n" other;
                exit 1
          in
          let config = { Salam.Config.default with Salam.Config.memory } in
          let sink = Trace.create ?categories:cats () in
          let r = Salam.simulate ~config ~trace:sink w in
          let filter =
            { Trace.no_filter with Trace.f_comp = component; f_from = from_tick; f_to = to_tick }
          in
          (match format with
          | "text" -> with_out out (fun oc -> Trace.write_text oc ~filter sink)
          | "json" -> with_out out (fun oc -> Trace.write_chrome_json oc (Trace.filtered ~filter sink))
          | "stats" ->
              with_out out (fun oc ->
                  Trace.write_stats_txt oc (engine_pairs r.Salam.stats @ r.Salam.sim_stats))
          | other ->
              Printf.eprintf "unknown format %s (text|json|stats)\n" other;
              exit 1);
          Printf.eprintf "%s: %d events recorded, correct=%b\n" w.Salam_workloads.Workload.name
            (Trace.count sink) r.Salam.correct;
          if not r.Salam.correct then exit 2)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let diff_traces a b =
  let la = read_lines a and lb = read_lines b in
  match Trace.first_divergence la lb with
  | None ->
      Printf.printf "traces identical (%d events)\n" (List.length la);
      0
  | Some d ->
      Printf.printf "%s\n" (Trace.divergence_to_string d);
      1

(* golden files live under the repo, one per scenario *)
let golden_path dir name = Filename.concat dir (name ^ ".trace")

let golden_check dir =
  let failures = ref 0 in
  List.iter
    (fun name ->
      let path = golden_path dir name in
      if not (Sys.file_exists path) then begin
        incr failures;
        Printf.printf "FAIL %-14s missing golden file %s (run bless)\n" name path
      end
      else begin
        let golden = read_lines path in
        let current = String.split_on_char '\n' (String.trim (Check_trace.capture name)) in
        match Trace.first_divergence golden current with
        | None -> Printf.printf "PASS %-14s %d events\n" name (List.length golden)
        | Some d ->
            incr failures;
            Printf.printf "FAIL %-14s %s\n" name (Trace.divergence_to_string d)
      end)
    Check_trace.names;
  if !failures = 0 then 0
  else begin
    Printf.printf
      "%d scenario(s) diverge from their golden traces.\n\
       If the timing change is intended, re-bless with:\n\
      \  dune exec bin/salam_trace.exe -- bless --dir %s\n"
      !failures dir;
    1
  end

let bless dir =
  List.iter
    (fun name ->
      let text = Check_trace.capture name in
      let path = golden_path dir name in
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "blessed %s\n" path)
    Check_trace.names;
  0

let run_cmd =
  let workload =
    Arg.(required & opt (some string) None
         & info [ "workload" ] ~docv:"NAME" ~doc:"Suite workload to run (prefix match).")
  in
  let memory =
    Arg.(value & opt string "spm"
         & info [ "mem"; "memory" ] ~docv:"KIND" ~doc:"Memory attachment: spm, cache or dram.")
  in
  let cache_size =
    Arg.(value & opt int 4096
         & info [ "cache-size" ] ~docv:"BYTES" ~doc:"Cache capacity for --mem cache.")
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: canonical text, Chrome trace-event json, or stats.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to $(docv) instead of stdout.")
  in
  let categories =
    Arg.(value & opt_all string []
         & info [ "category" ] ~docv:"CAT"
             ~doc:"Record only this category (repeatable), e.g. cache.miss, engine.issue.")
  in
  let component =
    Arg.(value & opt (some string) None
         & info [ "component" ] ~docv:"SUBSTR"
             ~doc:"Keep only events whose component name contains $(docv).")
  in
  let from_tick =
    Arg.(value & opt (some int64) None
         & info [ "from-tick" ] ~docv:"TICK" ~doc:"Drop events before $(docv).")
  in
  let to_tick =
    Arg.(value & opt (some int64) None
         & info [ "to-tick" ] ~docv:"TICK" ~doc:"Drop events after $(docv).")
  in
  let doc = "Run a workload under the trace layer and dump the event stream." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_trace $ workload $ memory $ cache_size $ format $ out $ categories $ component
      $ from_tick $ to_tick)

let diff_cmd =
  let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A") in
  let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B") in
  let doc = "Compare two canonical text traces; report the first divergent event." in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const (fun a b -> Stdlib.exit (diff_traces a b)) $ a $ b)

let dir_arg =
  Arg.(value & opt string "test/golden"
       & info [ "dir" ] ~docv:"DIR" ~doc:"Directory holding the golden .trace files.")

let golden_check_cmd =
  let doc = "Re-run every golden scenario and diff against its blessed trace." in
  Cmd.v (Cmd.info "golden-check" ~doc) Term.(const (fun d -> Stdlib.exit (golden_check d)) $ dir_arg)

let bless_cmd =
  let doc = "Regenerate the golden .trace files from the current simulator." in
  Cmd.v (Cmd.info "bless" ~doc) Term.(const (fun d -> Stdlib.exit (bless d)) $ dir_arg)

let cmd =
  let doc = "cycle-accurate trace capture, inspection and golden-trace regression" in
  Cmd.group (Cmd.info "salam_trace" ~version:"1.0.0" ~doc)
    [ run_cmd; diff_cmd; golden_check_cmd; bless_cmd ]

let () = exit (Cmd.eval cmd)
