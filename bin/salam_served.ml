(* The persistent DSE simulation daemon.

     dune exec bin/salam_served.exe -- serve --socket /tmp/salam.sock --store results.d
     dune exec bin/salam_served.exe -- ping --socket /tmp/salam.sock
     dune exec bin/salam_served.exe -- stats --socket /tmp/salam.sock
     dune exec bin/salam_served.exe -- stop --socket /tmp/salam.sock

   `serve` runs in the foreground until SIGINT/SIGTERM or a client's
   shutdown request, then drains in-flight simulations, flushes the
   sharded store and removes the socket. Exit status: 0 on success, 1
   on bad arguments or an unreachable daemon. *)

open Cmdliner
module Server = Salam_served.Server
module Client = Salam_served.Client
module P = Salam_served.Protocol
module Trace = Salam_obs.Trace

let die fmt = Printf.ksprintf (fun s -> Printf.eprintf "%s\n" s; exit 1) fmt

(* --- serve --------------------------------------------------------------- *)

let run_serve socket store shards workers island_domains queue trace_path hw_db_paths =
  (* register every named characterization database before any request
     arrives: a client point names its database by content hash, and
     resolution fails loudly for hashes this process never loaded *)
  List.iter
    (fun path ->
      match Salam_config.load path with
      | Ok db ->
          let h = Salam_config.register db in
          Printf.printf "[served] hw-db %s: %s (%s)\n%!" path (Salam_config.name db) h
      | Error e -> die "%s" e)
    hw_db_paths;
  let trace = Option.map (fun _ -> Trace.create ~categories:[ Trace.Dse_progress ] ()) trace_path in
  let cfg =
    {
      Server.socket_path = socket;
      store_dir = store;
      shards;
      workers = (match workers with Some w -> w | None -> Server.default_config.Server.workers);
      island_domains;
      queue_capacity = queue;
      trace;
    }
  in
  let t =
    match Server.start cfg with
    | t -> t
    | exception (Failure e | Invalid_argument e) -> die "%s" e
  in
  let stop_on_signal _ = ignore (Thread.create (fun () -> Server.stop t) ()) in
  Sys.set_signal Sys.sigint (Sys.Signal_handle stop_on_signal);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_on_signal);
  Printf.printf "[served] listening on %s (%s, %d shards, %d workers, queue %d)\n%!"
    socket
    (match store with Some d -> "store " ^ d | None -> "in-memory store")
    cfg.Server.shards cfg.Server.workers cfg.Server.queue_capacity;
  Server.wait t;
  let st = Server.stats_snapshot t in
  (match (trace, trace_path) with
  | Some sink, Some path ->
      let oc = open_out path in
      Trace.write_text oc sink;
      close_out oc;
      Printf.printf "[served] wrote %d progress events to %s\n" (Trace.count sink) path
  | _ -> ());
  Printf.printf
    "[served] stopped: requests=%d hits=%d misses=%d deduped=%d simulated=%d store=%d\n"
    st.P.st_requests st.P.st_hits st.P.st_misses st.P.st_deduped st.P.st_simulated
    st.P.st_store_size

(* --- client-side commands ------------------------------------------------ *)

let with_client socket f =
  match Client.with_connection socket f with
  | v -> v
  | exception Client.Protocol_error e -> die "%s" e

let run_ping socket =
  let t0 = Unix.gettimeofday () in
  with_client socket Client.ping;
  Printf.printf "[served] pong from %s in %.3f ms\n" socket
    ((Unix.gettimeofday () -. t0) *. 1e3)

let run_stats socket =
  let s = with_client socket Client.stats in
  Printf.printf
    "requests    %d\nhits        %d\nmisses      %d\ndeduped     %d\nsimulated   %d\n\
     inflight    %d\nqueue_depth %d\nshards      %d\nstore_size  %d\n"
    s.P.st_requests s.P.st_hits s.P.st_misses s.P.st_deduped s.P.st_simulated
    s.P.st_inflight s.P.st_queue_depth s.P.st_shards s.P.st_store_size

let run_stop socket =
  with_client socket Client.shutdown;
  (* the daemon acknowledges before draining; wait for the socket file
     to disappear so `stop && serve` sequences are race-free *)
  let rec wait tries =
    if Sys.file_exists socket && tries > 0 then begin
      Unix.sleepf 0.05;
      wait (tries - 1)
    end
  in
  wait 200;
  Printf.printf "[served] %s stopped\n" socket

(* --- cmdliner wiring ----------------------------------------------------- *)

let socket_arg =
  Arg.(required & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let store_arg =
  Arg.(value & opt (some string) None
       & info [ "store" ] ~docv:"DIR"
           ~doc:"Sharded persistent store directory (created on first use); \
                 omitted, results live in memory and die with the daemon.")

let shards_arg =
  Arg.(value & opt int 8
       & info [ "shards" ] ~docv:"N"
           ~doc:"Shard count for a store created by this run; an existing \
                 store's manifest wins.")

let workers_arg =
  Arg.(value & opt (some int) None
       & info [ "workers" ] ~docv:"N"
           ~doc:"Simulation worker domains (default: available cores minus one).")

let island_domains_arg =
  Arg.(value & opt int 1
       & info [ "island-domains" ] ~docv:"N"
           ~doc:"Cap on OCaml domains used $(i,inside) each simulation for per-accelerator \
                 island blocks (bit-identical for any value; composes with --workers, which \
                 fans out across jobs).")

let queue_arg =
  Arg.(value & opt int 64
       & info [ "queue" ] ~docv:"N" ~doc:"Bounded job-queue capacity.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record every request's dse.progress events and write them to \
                 $(docv) at shutdown.")

let hw_db_arg =
  Arg.(value & opt_all file []
       & info [ "hw-db" ] ~docv:"FILE"
           ~doc:"Load a hardware characterization database (repeatable); clients may then \
                 request points measured under it. The built-in 40 nm database is always \
                 available.")

let serve_cmd =
  let doc = "Run the daemon in the foreground until SIGINT/SIGTERM or a shutdown request." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run_serve $ socket_arg $ store_arg $ shards_arg $ workers_arg
          $ island_domains_arg $ queue_arg $ trace_arg $ hw_db_arg)

let ping_cmd =
  let doc = "Round-trip a ping and print the latency." in
  Cmd.v (Cmd.info "ping" ~doc) Term.(const run_ping $ socket_arg)

let stats_cmd =
  let doc = "Print the daemon's counters." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run_stats $ socket_arg)

let stop_cmd =
  let doc = "Gracefully stop the daemon (drains in-flight simulations first)." in
  Cmd.v (Cmd.info "stop" ~doc) Term.(const run_stop $ socket_arg)

let cmd =
  let doc = "persistent DSE simulation server with sharded stores and in-flight dedup" in
  Cmd.group (Cmd.info "salam_served" ~version:"1.0.0" ~doc)
    [ serve_cmd; ping_cmd; stats_cmd; stop_cmd ]

let () = exit (Cmd.eval cmd)
