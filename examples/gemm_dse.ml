(* Design-space exploration of a GEMM accelerator through `salam_dse`:
   declare the port/FU space, let the subsystem enumerate and simulate
   it (domain-parallel, cache-aware), and print the resulting
   time/power/occupancy trade-offs (the Fig 13/14 methodology).

     dune exec examples/gemm_dse.exe *)

module Dse = Salam_dse.Explore
module Space = Salam_dse.Space
module Point = Salam_dse.Point
module M = Salam_dse.Measurement

let () =
  Printf.printf "GEMM 16x16, k-loop fully unrolled, j-loop unrolled 8x — port/FU sweep\n\n";
  (* the sweep is a union of two rectangles: a read-port sweep with
     unconstrained units, and an FU sweep at 8 read ports *)
  let base = { Point.default with Point.unroll = 16; junroll = 8 } in
  let spaces =
    [
      Space.create ~base ~derive:Space.spm_balanced
        [ Space.Read_ports [ 1; 2; 4; 8; 16 ]; Space.Fu_limit [ 0 ] ];
      Space.create ~base ~derive:Space.spm_balanced
        [ Space.Read_ports [ 8 ]; Space.Fu_limit [ 2; 4; 8 ] ];
    ]
  in
  let report =
    Dse.run ~target:(Dse.gemm_target ~n:16 ()) ~strategy:Dse.Exhaustive spaces
  in
  Printf.printf "%-8s %-8s %10s %10s %10s %12s %14s\n" "ports" "FADDs" "cycles" "stall %"
    "FMUL occ" "time (us)" "power (mW)";
  List.iter
    (fun (m : M.t) ->
      let p = m.M.point in
      Printf.printf "%-8d %-8s %10Ld %9.1f%% %9.1f%% %12.2f %14.2f\n" p.Point.read_ports
        (if p.Point.fu_limit = 0 then "1:1" else string_of_int p.Point.fu_limit)
        m.M.cycles
        (100.0 *. float_of_int m.M.stall_cycles /. float_of_int (max 1 m.M.active_cycles))
        (100.0 *. m.M.fmul_occupancy)
        (m.M.seconds *. 1e6) m.M.total_mw)
    report.Dse.measurements;
  Printf.printf "\nPareto-optimal (time, power, area): %s\n"
    (String.concat ", "
       (List.map (fun (m : M.t) -> Point.to_string m.M.point) report.Dse.front));
  Printf.printf
    "\nSweep insight: bandwidth saturates the datapath around 8 read ports;\n\
     below that loads dominate the stall cycles, above it the FADD\n\
     accumulation chain is the bottleneck (the Fig 14/15 narrative).\n\
     (FMUL occupancy is measured against the FU inventory the static\n\
     CDFG actually allocated, recorded on each result.)\n"
